// Package gpu implements a warp-level SIMT execution model: kernels are Go
// functions run one warp at a time against real buffer data, with every
// memory access routed through a coalescing unit that emits the same
// 32/64/96/128-byte transactions a real GPU emits (paper Figure 3), and a
// roofline time model that converts the resulting traffic into simulated
// kernel time.
//
// The simulator is deterministic and, since the parallel execution engine,
// that determinism no longer depends on running warps one at a time: Launch
// shards the warp ID range across a pool of host worker goroutines
// (Config.Workers; 1 reproduces the historical serial path), each worker
// accumulates into a private stats shard, and shards are merged in
// ascending shard order at the launch barrier. Every merged quantity is
// either a commutative integer reduction (sums, a max) or a float derived
// from merged integers after the barrier, so totals, thrash charging, and
// the simulated clock are bit-for-bit identical for every worker count.
// Order-dependent state stays off the parallel path: launches that can
// touch UVM-managed memory run serial (the LRU residency bookkeeping is
// order-dependent), and kernels whose bodies are order-sensitive pass the
// Serial launch option. See DESIGN.md, "Parallel execution engine".
package gpu

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/memsys"
	"repro/internal/pcie"
	"repro/internal/uvm"
)

// WarpSize is the number of threads (lanes) per warp.
const WarpSize = 32

// Config describes one simulated GPU and its attachment to the host.
type Config struct {
	Name string

	// Tiers, when non-empty, is the authoritative description of the
	// device's memory hierarchy: capacities, interconnects, and DRAM
	// models for HBM, host DRAM, and (optionally) a CXL-class external
	// tier. NewDevice derives the classic per-field configuration below
	// from it (and validates the stack). When empty, the classic fields
	// are used directly and an equivalent two-tier stack is synthesized —
	// both directions are bit-for-bit identical for two-tier systems.
	Tiers memsys.TierStack

	// GPUDrivenPaging selects GPUVM-style GPU-driven paging for UVM
	// allocations: page fetches are posted by the GPU itself and charged
	// as link tag occupancy instead of waiting on the serialized CPU
	// fault handler. Migration counts are unchanged; only the time model
	// differs. See uvm.Config.GPUDriven.
	GPUDrivenPaging bool

	// MemBytes is the GPU global memory capacity. Explicit allocations and
	// migrated UVM pages share it.
	MemBytes int64

	// HostMemBytes is the host DRAM capacity backing pinned and UVM
	// allocations.
	HostMemBytes int64

	// HBM models GPU global memory bandwidth.
	HBM memsys.DRAMModel

	// HostDRAM models the host memory behind the PCIe root complex.
	HostDRAM memsys.DRAMModel

	// Link is the CPU-GPU interconnect.
	Link pcie.LinkConfig

	// LaunchOverhead is the fixed driver+hardware cost of one kernel launch.
	LaunchOverhead time.Duration

	// CopyOverhead is the fixed driver cost of one explicit memcpy call.
	CopyOverhead time.Duration

	// WarpInstrPerSec is the aggregate warp-instruction throughput used for
	// the compute term of the roofline. Graph traversal is bandwidth-bound,
	// so this only matters as a floor for fully in-memory runs.
	WarpInstrPerSec float64

	// L2Bytes is the GPU cache capacity available to hold zero-copy
	// sectors between a thread's sequential touches. Scaled along with
	// MemBytes in scaled systems. When the concurrent stream footprint
	// exceeds it, per-thread sector reuse is lost and elements are
	// re-fetched — the paper's §3.3 "frequent cacheline evictions ...
	// transferring more bytes to the GPU compared to the original
	// dataset".
	L2Bytes int64

	// MaxConcurrentLanes is the hardware thread concurrency (V100: 80 SMs
	// x 2048 threads). Scaled along with MemBytes in scaled systems so
	// the streams-vs-cache ratio of the full-size machine is preserved.
	MaxConcurrentLanes int

	// PerWarpOutstanding is the number of host-memory read requests one
	// warp can keep in flight (load/store unit scoreboard depth). It
	// bounds a single warp's streaming rate and therefore the critical
	// path of kernels with extremely long neighbor lists — the load
	// imbalance the paper's §6 discusses delegating to workload-balancing
	// schemes [38, 39].
	PerWarpOutstanding int

	// Workers is the number of host worker goroutines a kernel launch
	// spreads its warps over. 0 selects runtime.GOMAXPROCS(0); 1 executes
	// warps serially in ascending ID order (the historical engine).
	// Results are bit-for-bit identical for every value — see the package
	// comment and DESIGN.md for the determinism argument.
	Workers int

	// ThrashSensitivity converts the concurrent-stream footprint ratio
	// into a reuse-miss fraction: miss = clamp01(sensitivity * footprint /
	// L2Bytes). It is below 1 because LRU strongly favors the short reuse
	// distances of sequential streams. Calibrated once against Figure 9's
	// Naive-vs-UVM ratio (paper: 0.73x on average; see the thrash
	// sensitivity ablation for the sweep this value came from).
	ThrashSensitivity float64

	// ReorderWindow enables the IARU-style reorder stage (reorder.go): the
	// number of off-device 32B sectors a warp buffers before a
	// line-regrouped flush. 0 (the default) disables the stage and is
	// bit-identical to the pre-reorder engine; positive values are clamped
	// up to one full 128B line (4 sectors). Larger windows see more
	// cross-slice locality and merge more requests, at the cost of modeled
	// reorder-unit capacity (DESIGN.md §17).
	ReorderWindow int
}

// KernelStats aggregates one kernel launch's activity and its simulated
// elapsed time.
type KernelStats struct {
	Name  string
	Warps int

	WarpInstrs uint64

	// GPU-local traffic.
	HBMBytes uint64

	// Zero-copy traffic (requests that crossed the link individually).
	PCIeRequests     uint64
	PCIePayloadBytes uint64

	// Host DRAM bytes actually served (includes 64B-burst rounding).
	HostDRAMBytes uint64

	// CXL-tier traffic: coalesced reads against CXL-homed segments that
	// crossed the external tier's link individually, and the expander-side
	// bytes served (burst rounding included; UVM migrations out of CXL
	// count bytes here too). All zero on two-tier systems.
	CXLRequests     uint64
	CXLPayloadBytes uint64
	CXLMemBytes     uint64

	// UVM activity.
	UVMMigrations uint64
	UVMHits       uint64

	// Zero-copy sector reuse accounting for the L2 thrash model: potential
	// per-lane sector reuses observed, total lanes that streamed zero-copy
	// data, and the re-fetch requests actually charged at finish time.
	ZCSectorReuses uint64
	ZCActiveLanes  uint64
	ZCRefetches    uint64

	// MaxWarpHostReqs is the largest number of host-memory requests issued
	// by any single (virtual) warp: the kernel's latency-bound critical
	// path. Aggregated by maximum, not sum.
	MaxWarpHostReqs uint64

	// MaxWarpCXLReqs is the CXL-tier analogue of MaxWarpHostReqs: the
	// busiest warp's external-tier request count, whose critical path pays
	// the CXL link's microsecond RTT. Aggregated by maximum.
	MaxWarpCXLReqs uint64

	// Fault-injection activity (zero unless a pcie.FaultHook is attached
	// to the link). FaultedReads counts zero-copy requests whose
	// completion was injected as failed: their wire traffic happened but
	// the run that issued them is transiently broken and must be retried.
	// LatencySpikes counts requests charged an injected latency-spike
	// stall; the stall seconds are derived from the merged count at finish
	// time, like the other roofline terms.
	FaultedReads  uint64
	LatencySpikes uint64

	// Reorder-stage activity (zero unless Config.ReorderWindow > 0).
	// ReorderMerged counts off-device requests the window eliminated:
	// pre-reorder coalesced runs buffered minus line-regrouped requests
	// dispatched. ReorderFlushes counts window drains and
	// ReorderWindowSectors sums the window occupancy at each drain, so
	// ReorderWindowSectors/ReorderFlushes is the mean occupancy.
	ReorderMerged        uint64
	ReorderFlushes       uint64
	ReorderWindowSectors uint64

	// Roofline terms, in seconds. The CXL pair accumulates occupancy of
	// the external tier's link, which drains in parallel with the PCIe
	// link (separate physical channels).
	WireSeconds      float64
	TagSeconds       float64
	CXLWireSeconds   float64
	CXLTagSeconds    float64
	UVMSerialSeconds float64

	Elapsed time.Duration
}

// Add folds other into s (used for run-level aggregation).
func (s *KernelStats) Add(o *KernelStats) {
	s.Warps += o.Warps
	s.WarpInstrs += o.WarpInstrs
	s.HBMBytes += o.HBMBytes
	s.PCIeRequests += o.PCIeRequests
	s.PCIePayloadBytes += o.PCIePayloadBytes
	s.HostDRAMBytes += o.HostDRAMBytes
	s.CXLRequests += o.CXLRequests
	s.CXLPayloadBytes += o.CXLPayloadBytes
	s.CXLMemBytes += o.CXLMemBytes
	s.UVMMigrations += o.UVMMigrations
	s.UVMHits += o.UVMHits
	s.ZCSectorReuses += o.ZCSectorReuses
	s.ZCActiveLanes += o.ZCActiveLanes
	s.ZCRefetches += o.ZCRefetches
	if o.MaxWarpHostReqs > s.MaxWarpHostReqs {
		s.MaxWarpHostReqs = o.MaxWarpHostReqs
	}
	if o.MaxWarpCXLReqs > s.MaxWarpCXLReqs {
		s.MaxWarpCXLReqs = o.MaxWarpCXLReqs
	}
	s.FaultedReads += o.FaultedReads
	s.LatencySpikes += o.LatencySpikes
	s.ReorderMerged += o.ReorderMerged
	s.ReorderFlushes += o.ReorderFlushes
	s.ReorderWindowSectors += o.ReorderWindowSectors
	s.WireSeconds += o.WireSeconds
	s.TagSeconds += o.TagSeconds
	s.CXLWireSeconds += o.CXLWireSeconds
	s.CXLTagSeconds += o.CXLTagSeconds
	s.UVMSerialSeconds += o.UVMSerialSeconds
	s.Elapsed += o.Elapsed
}

// Sub returns s - prev, field by field. Use with two Total() snapshots to
// isolate one run's activity.
func (s KernelStats) Sub(prev KernelStats) KernelStats {
	return KernelStats{
		Name:                 s.Name,
		Warps:                s.Warps - prev.Warps,
		WarpInstrs:           s.WarpInstrs - prev.WarpInstrs,
		HBMBytes:             s.HBMBytes - prev.HBMBytes,
		PCIeRequests:         s.PCIeRequests - prev.PCIeRequests,
		PCIePayloadBytes:     s.PCIePayloadBytes - prev.PCIePayloadBytes,
		HostDRAMBytes:        s.HostDRAMBytes - prev.HostDRAMBytes,
		CXLRequests:          s.CXLRequests - prev.CXLRequests,
		CXLPayloadBytes:      s.CXLPayloadBytes - prev.CXLPayloadBytes,
		CXLMemBytes:          s.CXLMemBytes - prev.CXLMemBytes,
		UVMMigrations:        s.UVMMigrations - prev.UVMMigrations,
		UVMHits:              s.UVMHits - prev.UVMHits,
		ZCSectorReuses:       s.ZCSectorReuses - prev.ZCSectorReuses,
		ZCActiveLanes:        s.ZCActiveLanes - prev.ZCActiveLanes,
		ZCRefetches:          s.ZCRefetches - prev.ZCRefetches,
		MaxWarpHostReqs:      s.MaxWarpHostReqs, // max-aggregated; delta is the value itself
		MaxWarpCXLReqs:       s.MaxWarpCXLReqs,
		FaultedReads:         s.FaultedReads - prev.FaultedReads,
		LatencySpikes:        s.LatencySpikes - prev.LatencySpikes,
		ReorderMerged:        s.ReorderMerged - prev.ReorderMerged,
		ReorderFlushes:       s.ReorderFlushes - prev.ReorderFlushes,
		ReorderWindowSectors: s.ReorderWindowSectors - prev.ReorderWindowSectors,
		WireSeconds:          s.WireSeconds - prev.WireSeconds,
		TagSeconds:           s.TagSeconds - prev.TagSeconds,
		CXLWireSeconds:       s.CXLWireSeconds - prev.CXLWireSeconds,
		CXLTagSeconds:        s.CXLTagSeconds - prev.CXLTagSeconds,
		UVMSerialSeconds:     s.UVMSerialSeconds - prev.UVMSerialSeconds,
		Elapsed:              s.Elapsed - prev.Elapsed,
	}
}

// Device is one simulated GPU attached to host memory over a PCIe link.
type Device struct {
	cfg   Config
	arena *memsys.Arena
	uvmgr *uvm.Manager
	mon   pcie.Monitor

	// tel is the optional telemetry sink (see telemetry.go). Every hook
	// site nil-checks it, so a detached device pays nothing.
	tel Telemetry

	// runMu serializes whole traversal runs for concurrent callers; see
	// Exclusive. Single-goroutine callers never touch it.
	runMu sync.Mutex

	clock   time.Duration
	kernels []*KernelStats
	total   KernelStats

	// runEpoch counts traversal runs on this device (incremented by
	// BeginRun). It is mixed into fault-injection decisions so a retry of
	// a faulted run sees fresh outcomes instead of deterministically
	// re-hitting the same faults; with injection disabled it is inert.
	runEpoch uint64

	// forceSerial pins launches to the serial path while set. The
	// transport-policy runtime sets it for routed (adaptive) runs: a policy
	// may bind segments to UVM mid-run, and the UVM manager's LRU
	// bookkeeping is order-dependent, so such launches must not be sharded.
	forceSerial bool

	// Reused launch scratch (launch.go): the persistent serial-path warp
	// with its size-class counters, the parallel shard pool, and a chunked
	// KernelStats slab, so steady-state launches allocate nothing. Chunks
	// are never moved or shrunk; ResetStats just rewinds ksUsed, which
	// invalidates KernelStats pointers handed out before the reset.
	serialWarp Warp
	serialZC   [zcSizeClasses]uint64
	serialCXL  [zcSizeClasses]uint64
	shardPool  []*launchShard
	ksChunks   [][]KernelStats
	ksUsed     int
	lc         launchConfig
}

// NewDevice creates a device with a fresh memory arena and UVM manager.
//
// The memory hierarchy comes from cfg.Tiers when set (the stack is
// validated, and MemBytes/HostMemBytes/HBM/HostDRAM/Link are derived from
// it; a fault hook already installed on cfg.Link survives the derivation).
// Otherwise the classic fields are used as-is and an equivalent two-tier
// stack is synthesized, so Device.Tiers always describes the hierarchy.
func NewDevice(cfg Config) *Device {
	if len(cfg.Tiers) > 0 {
		if err := cfg.Tiers.Validate(); err != nil {
			panic("gpu: " + err.Error())
		}
		hbm, dram := cfg.Tiers.HBM(), cfg.Tiers.DRAM()
		cfg.MemBytes = hbm.CapacityBytes
		cfg.HostMemBytes = dram.CapacityBytes
		cfg.HBM = hbm.Mem
		cfg.HostDRAM = dram.Mem
		faults := cfg.Link.Faults
		cfg.Link = dram.Link
		if cfg.Link.Faults == nil {
			cfg.Link.Faults = faults
		}
	} else {
		cfg.Tiers = memsys.TwoTier(cfg.MemBytes, cfg.HostMemBytes,
			cfg.HBM, cfg.HostDRAM, cfg.Link)
	}
	if cfg.LaunchOverhead == 0 {
		cfg.LaunchOverhead = 8 * time.Microsecond
	}
	if cfg.CopyOverhead == 0 {
		cfg.CopyOverhead = 10 * time.Microsecond
	}
	if cfg.WarpInstrPerSec == 0 {
		cfg.WarpInstrPerSec = 1.2e11
	}
	if cfg.L2Bytes == 0 {
		cfg.L2Bytes = 6 << 20 // full-size V100 L2
	}
	if cfg.MaxConcurrentLanes == 0 {
		cfg.MaxConcurrentLanes = 80 * 2048
	}
	if cfg.ThrashSensitivity == 0 {
		cfg.ThrashSensitivity = 0.40
	}
	if cfg.PerWarpOutstanding == 0 {
		cfg.PerWarpOutstanding = 32
	}
	arena, err := memsys.NewTieredArena(cfg.Tiers)
	if err != nil {
		panic("gpu: " + err.Error()) // unreachable: the stack was validated or synthesized above
	}
	d := &Device{cfg: cfg, arena: arena}
	d.uvmgr = uvm.NewManager(uvm.ConfigWithPaging(d.uvmCapacityPages(), cfg.GPUDrivenPaging))
	return d
}

// uvmCapacityPages computes how many UVM pages fit in GPU memory not
// claimed by explicit allocations.
func (d *Device) uvmCapacityPages() int {
	if d.cfg.MemBytes <= 0 {
		return -1 // uncapped device: unlimited UVM caching
	}
	free := d.cfg.MemBytes - d.arena.GPUUsed()
	if free < 0 {
		free = 0
	}
	return int(free / int64(memsys.PageBytes))
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Tiers returns the device's memory-tier stack. Always populated: devices
// configured through the classic fields get a synthesized two-tier stack.
func (d *Device) Tiers() memsys.TierStack { return d.cfg.Tiers }

// SetTiers replaces the device's tier stack at run time — the load-time
// path behind emogi.WithTierStack. The HBM and DRAM tiers must match the
// device's configured capacities (the simulated hardware does not change
// size mid-flight); what may change is the external tier: attaching a CXL
// tier enables SpaceCXL homes, detaching one is refused while any bytes are
// still homed there.
func (d *Device) SetTiers(ts memsys.TierStack) error {
	if err := ts.Validate(); err != nil {
		return err
	}
	hbm, dram := ts.HBM(), ts.DRAM()
	if hbm.CapacityBytes != d.cfg.MemBytes {
		return fmt.Errorf("gpu: tier stack HBM capacity %d does not match the device's %d",
			hbm.CapacityBytes, d.cfg.MemBytes)
	}
	if dram.CapacityBytes != d.cfg.HostMemBytes {
		return fmt.Errorf("gpu: tier stack DRAM capacity %d does not match the device's %d",
			dram.CapacityBytes, d.cfg.HostMemBytes)
	}
	if ts.CXL() == nil {
		if used := d.arena.CXLUsed(); used > 0 {
			return fmt.Errorf("gpu: cannot detach the CXL tier with %d bytes still homed there", used)
		}
	}
	d.cfg.Tiers = ts
	d.arena.AttachCXLTier(ts.CXL())
	return nil
}

// Exclusive runs fn while holding the device's run mutex. The simulated
// device, like a real CUDA context, is a single-caller resource: its
// clock, arena, kernel log, and UVM residency are unsynchronized state
// that concurrent traversals would interleave on. Callers that share a
// device across goroutines (the traversal service, emogi.System.Do)
// wrap each whole run — BeginRun through EndRun, every launch and copy —
// in Exclusive; single-goroutine callers never need it.
func (d *Device) Exclusive(fn func()) {
	d.runMu.Lock()
	defer d.runMu.Unlock()
	fn()
}

// Arena returns the device's memory arena for allocations.
func (d *Device) Arena() *memsys.Arena { return d.arena }

// UVM returns the device's UVM manager.
func (d *Device) UVM() *uvm.Manager { return d.uvmgr }

// Monitor returns the PCIe traffic monitor observing this device's link.
func (d *Device) Monitor() *pcie.Monitor { return &d.mon }

// Clock returns the simulated time elapsed on this device.
func (d *Device) Clock() time.Duration { return d.clock }

// Kernels returns per-launch statistics in launch order.
func (d *Device) Kernels() []*KernelStats { return d.kernels }

// Total returns aggregate statistics over all launches and copies.
func (d *Device) Total() KernelStats { return d.total }

// ResetStats clears the clock, kernel log, monitor, and UVM statistics,
// but keeps allocations and UVM residency. Use ResetUVMResidency for a cold
// run. Capacity is retained — the kernel log and the stats slab behind it
// are rewound, not freed — so steady-state reset+run cycles allocate
// nothing; KernelStats pointers obtained from Kernels before the reset are
// invalidated (their backing slots will be reused).
func (d *Device) ResetStats() {
	d.clock = 0
	d.kernels = d.kernels[:0]
	d.ksUsed = 0
	d.total = KernelStats{}
	d.mon.Reset()
}

// ResetUVMResidency evicts all UVM pages and all explicitly staged segment
// copies so the next run starts cold, and refreshes the UVM capacity from
// current free GPU memory. Staged segments belong to the batched-copy
// transport substrate; dropping them here keeps cold-vs-warm comparisons
// honest across policies (System.ColdCaches routes through this).
func (d *Device) ResetUVMResidency() {
	d.uvmgr.Reset()
	d.uvmgr = uvm.NewManager(uvm.ConfigWithPaging(d.uvmCapacityPages(), d.cfg.GPUDrivenPaging))
	d.arena.ResetStaged()
}

// SetSerialLaunches pins (or, with false, unpins) kernel launches to the
// serial path. Used by the transport-policy runtime around routed runs; see
// Device.forceSerial.
func (d *Device) SetSerialLaunches(on bool) { d.forceSerial = on }

// finish folds the per-size zero-copy request counts into the link roofline
// terms, converts the kernel's traffic into elapsed time, and advances the
// clock. zc holds the count of 32/64/96/128-byte zero-copy requests and cxl
// the same for requests served by the external CXL-class tier; the wire and
// tag seconds are derived here, after the shard merge, so the float
// accumulation order — and therefore the simulated time — is independent of
// how the launch was partitioned across workers. workers is the worker
// count the launch used, reported to telemetry.
func (d *Device) finish(ks *KernelStats, zc, cxl *[zcSizeClasses]uint64, workers int) {
	var zcReqs uint64
	for i, n := range zc {
		if n == 0 {
			continue
		}
		zcReqs += n
		ks.WireSeconds += float64(n) * d.cfg.Link.WireSeconds((i+1)*memsys.SectorBytes)
	}
	if zcReqs > 0 {
		ks.TagSeconds += float64(zcReqs) * d.cfg.Link.TagSeconds()
	}
	d.chargeThrash(ks)
	// External-tier roofline: the CXL link is a separate physical channel,
	// so its occupancy drains in parallel with PCIe and contributes its own
	// stream, memory-service, and latency-critical-path terms. All exactly
	// zero (not just negligible) on two-tier systems.
	var cxlTime, cxlMemTime, cxlCrit float64
	if cxlT := d.cfg.Tiers.CXL(); cxlT != nil {
		var cxlReqs uint64
		for i, n := range cxl {
			if n == 0 {
				continue
			}
			cxlReqs += n
			ks.CXLWireSeconds += float64(n) * cxlT.Link.WireSeconds((i+1)*memsys.SectorBytes)
		}
		if cxlReqs > 0 {
			ks.CXLTagSeconds += float64(cxlReqs) * cxlT.Link.TagSeconds()
		}
		cxlTime = pcie.StreamSeconds(ks.CXLWireSeconds, ks.CXLTagSeconds)
		cxlMemTime = cxlT.Mem.ServiceSeconds(int64(ks.CXLMemBytes))
		cxlCrit = float64(ks.MaxWarpCXLReqs) * cxlT.Link.RTT.Seconds() /
			float64(d.cfg.PerWarpOutstanding)
	}
	pcieTime := pcie.StreamSeconds(ks.WireSeconds, ks.TagSeconds)
	hbmTime := d.cfg.HBM.ServiceSeconds(int64(ks.HBMBytes))
	dramTime := d.cfg.HostDRAM.ServiceSeconds(int64(ks.HostDRAMBytes))
	compTime := float64(ks.WarpInstrs) / d.cfg.WarpInstrPerSec
	// Latency-bound critical path: the busiest warp streams at most
	// PerWarpOutstanding requests per round trip.
	critTime := float64(ks.MaxWarpHostReqs) * d.cfg.Link.RTT.Seconds() /
		float64(d.cfg.PerWarpOutstanding)
	bottleneck := pcieTime
	for _, t := range []float64{hbmTime, dramTime, compTime, ks.UVMSerialSeconds, critTime,
		cxlTime, cxlMemTime, cxlCrit} {
		if t > bottleneck {
			bottleneck = t
		}
	}
	ks.Elapsed = d.cfg.LaunchOverhead + time.Duration(bottleneck*float64(time.Second))
	if h := d.cfg.Link.Faults; h != nil && ks.LatencySpikes > 0 {
		// Injected latency spikes stall the kernel serially. Derived here
		// from the merged integer count so the penalty — like the roofline
		// floats — is independent of the warp partitioning.
		ks.Elapsed += time.Duration(ks.LatencySpikes) * h.SpikePenalty()
	}
	start := d.clock
	d.clock += ks.Elapsed
	d.kernels = append(d.kernels, ks)
	d.total.Add(ks)
	d.mon.Sample(d.clock)
	if d.tel != nil {
		d.tel.KernelDone(d, ks, workers, d.maxWorkers(), start, d.clock)
	}
}

// chargeThrash applies the §3.3 cache-thrash model: per-lane zero-copy
// sector reuse (the warp MRU) only survives in L2 while the concurrent
// stream footprint fits. The surviving fraction scales the observed reuses
// into 32-byte re-fetch requests, charged to the link, host DRAM, and the
// traffic monitor exactly like first fetches.
func (d *Device) chargeThrash(ks *KernelStats) {
	if ks.ZCSectorReuses == 0 {
		return
	}
	streams := ks.ZCActiveLanes
	if hw := uint64(d.cfg.MaxConcurrentLanes); streams > hw {
		streams = hw
	}
	footprint := float64(streams) * float64(memsys.SectorBytes)
	missFrac := d.cfg.ThrashSensitivity * footprint / float64(d.cfg.L2Bytes)
	if missFrac > 1 {
		missFrac = 1
	}
	extra := uint64(float64(ks.ZCSectorReuses) * missFrac)
	if extra == 0 {
		return
	}
	ks.ZCRefetches = extra
	ks.PCIeRequests += extra
	ks.PCIePayloadBytes += extra * uint64(memsys.SectorBytes)
	ks.WireSeconds += float64(extra) * d.cfg.Link.WireSeconds(memsys.SectorBytes)
	ks.TagSeconds += float64(extra) * d.cfg.Link.TagSeconds()
	ks.HostDRAMBytes += extra * uint64(d.cfg.HostDRAM.ServedBytes(memsys.SectorBytes))
	d.mon.RecordClassN(memsys.SectorBytes, d.cfg.Link.TLPOverheadBytes, extra, pcie.ClassZeroCopy)
}

// CopyToDevice models an explicit host-to-device bulk transfer of n bytes
// (e.g. Subway's subgraph upload). The transfer crosses the link at memcpy
// peak and is recorded by the monitor.
func (d *Device) CopyToDevice(n int64) time.Duration {
	return d.bulk(n, true, pcie.ClassBulk)
}

// CopyToHost models a device-to-host transfer of n bytes (result download,
// frontier flag readback).
func (d *Device) CopyToHost(n int64) time.Duration {
	return d.bulk(n, false, pcie.ClassBulk)
}

// StageSegments models the batched-copy transport substrate's round-boundary
// upload: n bytes of edge-list segments copied host-to-device at memcpy
// peak, attributed to the staged transfer class on the monitor so adaptive
// runs can show where their traffic went.
func (d *Device) StageSegments(n int64) time.Duration {
	return d.bulk(n, true, pcie.ClassStaged)
}

// StageSegmentsCXL is StageSegments for segments homed on the external
// CXL-class tier: the copy crosses the CXL link (its bulk rate, not
// PCIe's) and is attributed to the CXL transfer class.
func (d *Device) StageSegmentsCXL(n int64) time.Duration {
	return d.bulkLink(d.cxlLink(), n, true, pcie.ClassCXL)
}

// PromoteFromCXL models re-homing n bytes from the CXL-class tier into host
// DRAM (the adaptive policy's host-cache placement). The expander read over
// the CXL link is the bottleneck; the host-DRAM write is absorbed.
func (d *Device) PromoteFromCXL(n int64) time.Duration {
	return d.bulkLink(d.cxlLink(), n, true, pcie.ClassCXL)
}

// DemoteToCXL models re-homing n bytes from host DRAM into the CXL-class
// tier (explicit Request-level placement moves). The expander write over the
// CXL link is the bottleneck, mirroring PromoteFromCXL.
func (d *Device) DemoteToCXL(n int64) time.Duration {
	return d.bulkLink(d.cxlLink(), n, true, pcie.ClassCXL)
}

// cxlLink returns the external tier's link; devices without a CXL tier must
// not reach the CXL copy paths.
func (d *Device) cxlLink() pcie.LinkConfig {
	cxlT := d.cfg.Tiers.CXL()
	if cxlT == nil {
		panic("gpu: CXL transfer on a device with no CXL tier")
	}
	return cxlT.Link
}

func (d *Device) bulk(n int64, record bool, class pcie.TransferClass) time.Duration {
	return d.bulkLink(d.cfg.Link, n, record, class)
}

// bulkLink is the bulk-transfer core parameterized by the link crossed:
// the PCIe link for host DRAM traffic, the CXL link for external-tier
// staging and promotion.
func (d *Device) bulkLink(lnk pcie.LinkConfig, n int64, record bool, class pcie.TransferClass) time.Duration {
	if n < 0 {
		panic("gpu: negative copy size")
	}
	dt := d.cfg.CopyOverhead + time.Duration(lnk.BulkSeconds(n)*float64(time.Second))
	if record && n > 0 {
		d.mon.RecordBulkClass(n, lnk.TLPOverheadBytes, class)
	}
	start := d.clock
	d.clock += dt
	d.total.Elapsed += dt
	d.mon.Sample(d.clock)
	if d.tel != nil {
		d.tel.CopyDone(d, record, n, start, d.clock)
	}
	return dt
}

// CopyOnDevice models a device-to-device copy of src into dst
// (cudaMemcpyDeviceToDevice): the data moves at HBM bandwidth — one read
// plus one write of the payload — with no link traffic and no launch
// overhead (it is a stream operation). Both buffers must be GPU-resident.
func (d *Device) CopyOnDevice(dst, src *memsys.Buffer) {
	if dst.Space != memsys.SpaceGPU || src.Space != memsys.SpaceGPU {
		panic("gpu: CopyOnDevice requires GPU-resident buffers")
	}
	if dst.Size() < src.Size() {
		panic("gpu: CopyOnDevice destination smaller than source")
	}
	copy(dst.Data, src.Data)
	dt := time.Duration(d.cfg.HBM.ServiceSeconds(2*src.Size()) * float64(time.Second))
	d.clock += dt
	d.total.Elapsed += dt
}

// Memset fills a GPU-resident buffer with v, modeling a cudaMemsetAsync:
// the cost is the buffer size at HBM bandwidth, with no launch overhead
// (it is a stream operation).
func (d *Device) Memset(b *memsys.Buffer, v byte) {
	for i := range b.Data {
		b.Data[i] = v
	}
	dt := time.Duration(d.cfg.HBM.ServiceSeconds(b.Size()) * float64(time.Second))
	d.clock += dt
	d.total.Elapsed += dt
}

// HostCompute advances the clock by a host-side CPU cost (e.g. Subway's
// subgraph generation). It is serialized with device work.
func (d *Device) HostCompute(dt time.Duration) {
	if dt < 0 {
		panic("gpu: negative host compute time")
	}
	d.clock += dt
	d.total.Elapsed += dt
}
