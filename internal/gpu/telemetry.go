package gpu

import (
	"runtime"
	"time"
)

// This file is the device's telemetry attachment point. The simulator's
// observability subsystem (internal/telemetry) implements Telemetry; the
// device calls the hooks at well-defined points of the simulated timeline.
// A nil Telemetry is the default and costs nothing: every hook site is a
// single nil check with no allocation, so the bit-for-bit determinism
// guarantee of the parallel launch engine (DESIGN.md §7) and the hot-path
// allocation profile are untouched when telemetry is disabled.

// RunLabels identifies the traversal run in flight on a device, used to
// attribute kernel launches, copies, and rounds to an (app, variant,
// transport, graph) series.
type RunLabels struct {
	App       string // "BFS", "SSSP", "CC", "toy", ...
	Variant   string // kernel access variant, e.g. "Merged+Aligned"
	Transport string // "zerocopy" or "uvm"
	Graph     string // dataset name
}

// Telemetry receives simulator events. Implementations must be safe for
// concurrent use when multiple devices share one sink; hooks on a single
// device are always invoked sequentially from the device's own goroutine
// (never from launch workers). All timestamps are simulated device time.
type Telemetry interface {
	// RunBegin marks the start of a traversal run; subsequent events on dev
	// carry these labels until RunEnd.
	RunBegin(dev *Device, labels RunLabels)

	// RunEnd marks the end of the current traversal run on dev.
	RunEnd(dev *Device)

	// KernelDone fires once per kernel launch, after the launch's stats are
	// merged and the clock advanced. workers is the worker-goroutine count
	// the launch actually used; maxWorkers is the count the device was
	// configured for (a serial-forced launch reports workers < maxWorkers).
	// start and end bound the launch on the simulated clock.
	KernelDone(dev *Device, ks *KernelStats, workers, maxWorkers int, start, end time.Duration)

	// CopyDone fires once per explicit bulk transfer (CopyToDevice /
	// CopyToHost). toDevice is the direction; bytes is the payload size.
	CopyDone(dev *Device, toDevice bool, bytes int64, start, end time.Duration)

	// RoundDone fires once per traversal round (one BFS level, one SSSP/CC
	// relaxation sweep), spanning the round's flag clear, kernel, and flag
	// readback on the simulated clock.
	RoundDone(dev *Device, name string, round int, start, end time.Duration)
}

// TransportMove summarizes one group of same-shaped transport-policy
// decisions in a round: n partitions of the given access-density class moved
// to (or were confirmed on) the given substrate choice.
type TransportMove struct {
	PartitionClass string // density class: "hot", "warm", or "cold"
	Choice         string // substrate: "zerocopy", "uvm", or "staged"
	Count          uint64
}

// TransportDecisionSink is an optional extension of Telemetry: sinks that
// also implement it receive the transport-policy layer's per-round partition
// decisions (the telemetry collector turns them into the
// emogi_transport_decisions_total counter and per-round decision spans). The
// engine discovers it by type assertion on the attached Telemetry, the same
// pattern the request tracer uses, so plain sinks need no stub methods.
type TransportDecisionSink interface {
	// TransportDecisions fires once per decided round on routed runs. moves
	// holds only non-empty groups; start and end bound the decision point —
	// including any staging copies it charged — on the simulated clock.
	TransportDecisions(dev *Device, round int, moves []TransportMove, start, end time.Duration)
}

// EmitTransportDecisions forwards a decided round to the attached sink if it
// implements TransportDecisionSink; otherwise it is a no-op.
func (d *Device) EmitTransportDecisions(round int, moves []TransportMove, start, end time.Duration) {
	if s, ok := d.tel.(TransportDecisionSink); ok {
		s.TransportDecisions(d, round, moves, start, end)
	}
}

// SetTelemetry attaches a telemetry sink to the device (nil detaches).
func (d *Device) SetTelemetry(t Telemetry) { d.tel = t }

// Telemetry returns the attached sink, or nil when telemetry is disabled.
func (d *Device) Telemetry() Telemetry { return d.tel }

// BeginRun reports the start of a traversal run to the attached telemetry
// sink and advances the device's run epoch. It does not allocate; with
// telemetry and fault injection both disabled the epoch increment is the
// only work.
func (d *Device) BeginRun(labels RunLabels) {
	d.runEpoch++
	if d.tel != nil {
		d.tel.RunBegin(d, labels)
	}
}

// RunEpoch returns the number of traversal runs begun on this device. Fault
// injection mixes it into per-request decisions so retries of a faulted run
// see fresh outcomes.
func (d *Device) RunEpoch() uint64 { return d.runEpoch }

// EndRun reports the end of the current traversal run.
func (d *Device) EndRun() {
	if d.tel != nil {
		d.tel.RunEnd(d)
	}
}

// EmitRound reports one completed traversal round that started at the given
// simulated time and ends at the current clock.
func (d *Device) EmitRound(name string, round int, start time.Duration) {
	if d.tel != nil {
		d.tel.RoundDone(d, name, round, start, d.clock)
	}
}

// maxWorkers resolves the worker count the device is configured to use for
// parallel-eligible launches (the denominator of worker utilization).
func (d *Device) maxWorkers() int {
	n := d.cfg.Workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		n = 1
	}
	return n
}
