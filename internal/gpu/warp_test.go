package gpu

import (
	"testing"

	"repro/internal/memsys"
	"repro/internal/pcie"
)

// testDevice returns an uncapped device on a Gen3 link for traffic tests.
func testDevice() *Device {
	return NewDevice(Config{
		Name:     "test",
		HBM:      memsys.HBM2V100(),
		HostDRAM: memsys.DDR4Quad(),
		Link:     pcie.Gen3x16(),
	})
}

func TestMaskHelpers(t *testing.T) {
	if MaskFirstN(0) != MaskNone {
		t.Errorf("MaskFirstN(0) != MaskNone")
	}
	if MaskFirstN(32) != MaskFull || MaskFirstN(99) != MaskFull {
		t.Errorf("MaskFirstN clamping broken")
	}
	m := MaskFirstN(3)
	if !m.Has(0) || !m.Has(2) || m.Has(3) {
		t.Errorf("MaskFirstN(3) = %#x", m)
	}
	if m.Count() != 3 {
		t.Errorf("Count = %d, want 3", m.Count())
	}
	m = m.Set(10)
	if !m.Has(10) || m.Count() != 4 {
		t.Errorf("Set failed: %#x", m)
	}
	m = m.Clear(10)
	if m.Has(10) || m.Count() != 3 {
		t.Errorf("Clear failed: %#x", m)
	}
	if MaskFull.Count() != 32 {
		t.Errorf("MaskFull.Count() = %d", MaskFull.Count())
	}
}

// TestCoalesceMergedAligned reproduces Figure 3(b): a warp reading 32
// consecutive 4-byte elements starting on a 128B boundary issues exactly
// one 128-byte request.
func TestCoalesceMergedAligned(t *testing.T) {
	d := testDevice()
	buf := d.Arena().MustAlloc("zc", memsys.SpaceHostPinned, 4096)
	d.Launch("k", 1, func(w *Warp) {
		var idx [WarpSize]int64
		for i := range idx {
			idx[i] = int64(i)
		}
		w.GatherU32(buf, &idx, MaskFull)
	})
	snap := d.Monitor().Snapshot()
	if snap.Requests != 1 {
		t.Fatalf("requests = %d, want 1 (%s)", snap.Requests, snap)
	}
	if snap.BySize[128] != 1 {
		t.Errorf("expected a single 128B request, got %s", snap)
	}
}

// TestCoalesceMerged8Byte: with 8-byte elements a full warp covers 256B and
// issues exactly two 128-byte requests (Listing 2's stride-32 loop body).
func TestCoalesceMerged8Byte(t *testing.T) {
	d := testDevice()
	buf := d.Arena().MustAlloc("zc", memsys.SpaceHostPinned, 4096)
	d.Launch("k", 1, func(w *Warp) {
		var idx [WarpSize]int64
		for i := range idx {
			idx[i] = int64(i)
		}
		w.GatherU64(buf, &idx, MaskFull)
	})
	snap := d.Monitor().Snapshot()
	if snap.Requests != 2 || snap.BySize[128] != 2 {
		t.Errorf("want two 128B requests, got %s", snap)
	}
}

// TestCoalesceMisaligned reproduces Figure 3(c): a warp reading a 128-byte
// span offset by 32 bytes from the 128B boundary issues a 96B and a 32B
// request.
func TestCoalesceMisaligned(t *testing.T) {
	d := testDevice()
	buf := d.Arena().MustAlloc("zc", memsys.SpaceHostPinned, 4096)
	d.Launch("k", 1, func(w *Warp) {
		var idx [WarpSize]int64
		for i := range idx {
			idx[i] = int64(i) + 8 // 8 x 4B = 32B offset
		}
		w.GatherU32(buf, &idx, MaskFull)
	})
	snap := d.Monitor().Snapshot()
	if snap.Requests != 2 {
		t.Fatalf("requests = %d, want 2 (%s)", snap.Requests, snap)
	}
	if snap.BySize[96] != 1 || snap.BySize[32] != 1 {
		t.Errorf("want one 96B and one 32B request, got %s", snap)
	}
}

// TestCoalesceStrided reproduces Figure 3(a): each lane reading a different
// 128-byte block issues 32 separate 32-byte requests.
func TestCoalesceStrided(t *testing.T) {
	d := testDevice()
	buf := d.Arena().MustAlloc("zc", memsys.SpaceHostPinned, 128*WarpSize)
	d.Launch("k", 1, func(w *Warp) {
		var idx [WarpSize]int64
		for i := range idx {
			idx[i] = int64(i) * 32 // lane i at byte 128*i (4B elements)
		}
		w.GatherU32(buf, &idx, MaskFull)
	})
	snap := d.Monitor().Snapshot()
	if snap.Requests != 32 || snap.BySize[32] != 32 {
		t.Errorf("want 32 x 32B requests, got %s", snap)
	}
}

// TestMRUSectorReuse: a lane iterating sequentially issues one 32B request
// per sector (4 x 8B elements), not one per element — §3.3's description of
// the strided pattern.
func TestMRUSectorReuse(t *testing.T) {
	d := testDevice()
	buf := d.Arena().MustAlloc("zc", memsys.SpaceHostPinned, 4096)
	d.Launch("k", 1, func(w *Warp) {
		var idx [WarpSize]int64
		for e := 0; e < 16; e++ { // 16 sequential 8B elements = 4 sectors
			idx[0] = int64(e)
			w.GatherU64(buf, &idx, MaskFirstN(1))
		}
	})
	snap := d.Monitor().Snapshot()
	if snap.Requests != 4 || snap.BySize[32] != 4 {
		t.Errorf("sequential lane should issue 4 x 32B requests, got %s", snap)
	}
}

func TestMRUInvalidation(t *testing.T) {
	d := testDevice()
	buf := d.Arena().MustAlloc("zc", memsys.SpaceHostPinned, 4096)
	d.Launch("k", 1, func(w *Warp) {
		var idx [WarpSize]int64
		w.GatherU64(buf, &idx, MaskFirstN(1))
		w.GatherU64(buf, &idx, MaskFirstN(1)) // MRU hit
		w.InvalidateMRU()
		w.GatherU64(buf, &idx, MaskFirstN(1)) // re-issues
	})
	if got := d.Monitor().Requests(); got != 2 {
		t.Errorf("requests = %d, want 2", got)
	}
}

// TestMRUResetsPerWarp: the MRU is per-warp state; a new warp re-issues.
func TestMRUResetsPerWarp(t *testing.T) {
	d := testDevice()
	buf := d.Arena().MustAlloc("zc", memsys.SpaceHostPinned, 4096)
	d.Launch("k", 2, func(w *Warp) {
		var idx [WarpSize]int64
		w.GatherU64(buf, &idx, MaskFirstN(1))
	})
	if got := d.Monitor().Requests(); got != 2 {
		t.Errorf("requests = %d, want 2 (one per warp)", got)
	}
}

// TestWritesBypassMRU: stores always issue requests.
func TestWritesBypassMRU(t *testing.T) {
	d := testDevice()
	buf := d.Arena().MustAlloc("zc", memsys.SpaceHostPinned, 4096)
	d.Launch("k", 1, func(w *Warp) {
		var idx [WarpSize]int64
		var val [WarpSize]uint32
		w.ScatterU32(buf, &idx, &val, MaskFirstN(1))
		w.ScatterU32(buf, &idx, &val, MaskFirstN(1))
	})
	if got := d.Monitor().Requests(); got != 2 {
		t.Errorf("requests = %d, want 2 (writes bypass MRU)", got)
	}
}

// TestCoalesceNonContiguousSectors: lanes touching sectors 0 and 2 of one
// line produce two requests (a PCIe read must be a contiguous range).
func TestCoalesceNonContiguousSectors(t *testing.T) {
	d := testDevice()
	buf := d.Arena().MustAlloc("zc", memsys.SpaceHostPinned, 4096)
	d.Launch("k", 1, func(w *Warp) {
		var idx [WarpSize]int64
		idx[0] = 0 // sector 0
		idx[1] = 8 // sector 2 (64B / 8B elements)
		w.GatherU64(buf, &idx, MaskFirstN(2))
	})
	snap := d.Monitor().Snapshot()
	if snap.Requests != 2 || snap.BySize[32] != 2 {
		t.Errorf("want 2 x 32B requests for a gap, got %s", snap)
	}
}

// TestCoalesceDuplicateAddrs: all lanes reading the same element merge into
// a single 32B request (broadcast).
func TestCoalesceDuplicateAddrs(t *testing.T) {
	d := testDevice()
	buf := d.Arena().MustAlloc("zc", memsys.SpaceHostPinned, 4096)
	d.Launch("k", 1, func(w *Warp) {
		var idx [WarpSize]int64 // all zero
		w.GatherU64(buf, &idx, MaskFull)
	})
	snap := d.Monitor().Snapshot()
	if snap.Requests != 1 || snap.BySize[32] != 1 {
		t.Errorf("broadcast should merge to one 32B request, got %s", snap)
	}
}

func TestGatherDataCorrectness(t *testing.T) {
	d := testDevice()
	buf := d.Arena().MustAlloc("zc", memsys.SpaceHostPinned, 4096)
	for i := int64(0); i < 512; i++ {
		buf.PutU64(i, uint64(i*3))
	}
	var got [WarpSize]uint64
	d.Launch("k", 1, func(w *Warp) {
		var idx [WarpSize]int64
		for i := range idx {
			idx[i] = int64(i * 7 % 512)
		}
		got = w.GatherU64(buf, &idx, MaskFull)
	})
	for i := 0; i < WarpSize; i++ {
		want := uint64((i * 7 % 512) * 3)
		if got[i] != want {
			t.Errorf("lane %d: got %d, want %d", i, got[i], want)
		}
	}
}

func TestInactiveLanesUntouched(t *testing.T) {
	d := testDevice()
	buf := d.Arena().MustAlloc("zc", memsys.SpaceHostPinned, 4096)
	buf.PutU64(0, 42)
	var got [WarpSize]uint64
	d.Launch("k", 1, func(w *Warp) {
		var idx [WarpSize]int64
		got = w.GatherU64(buf, &idx, MaskFirstN(1))
	})
	if got[0] != 42 {
		t.Errorf("active lane value = %d, want 42", got[0])
	}
	if got[5] != 0 {
		t.Errorf("inactive lane should stay zero, got %d", got[5])
	}
	if d.Monitor().Requests() != 1 {
		t.Errorf("requests = %d, want 1", d.Monitor().Requests())
	}
}

func TestEmptyMaskNoTraffic(t *testing.T) {
	d := testDevice()
	buf := d.Arena().MustAlloc("zc", memsys.SpaceHostPinned, 4096)
	d.Launch("k", 1, func(w *Warp) {
		var idx [WarpSize]int64
		w.GatherU64(buf, &idx, MaskNone)
	})
	if d.Monitor().Requests() != 0 {
		t.Errorf("empty mask should produce no traffic")
	}
}

func TestScalarAndPair(t *testing.T) {
	d := testDevice()
	buf := d.Arena().MustAlloc("zc", memsys.SpaceHostPinned, 4096)
	buf.PutU64(10, 100)
	buf.PutU64(11, 110)
	d.Launch("k", 1, func(w *Warp) {
		if got := w.ScalarU64(buf, 10); got != 100 {
			t.Errorf("ScalarU64 = %d, want 100", got)
		}
		w.InvalidateMRU()
		a, b := w.PairU64(buf, 10)
		if a != 100 || b != 110 {
			t.Errorf("PairU64 = %d,%d want 100,110", a, b)
		}
	})
	// idx 10,11 * 8B = bytes 80..96: same sector for scalar; pair spans
	// sectors 2 and 3 of the line -> contiguous -> one request each call.
	if got := d.Monitor().Requests(); got != 2 {
		t.Errorf("requests = %d, want 2", got)
	}
}

func TestStoreScalarU32(t *testing.T) {
	d := testDevice()
	buf := d.Arena().MustAlloc("g", memsys.SpaceGPU, 64)
	d.Launch("k", 1, func(w *Warp) {
		w.StoreScalarU32(buf, 3, 77)
	})
	if got := buf.U32(3); got != 77 {
		t.Errorf("stored value = %d, want 77", got)
	}
}

func TestAtomicMinU32(t *testing.T) {
	d := testDevice()
	buf := d.Arena().MustAlloc("labels", memsys.SpaceGPU, 256)
	for i := int64(0); i < 64; i++ {
		buf.PutU32(i, 100)
	}
	var old [WarpSize]uint32
	d.Launch("k", 1, func(w *Warp) {
		var idx [WarpSize]int64
		var val [WarpSize]uint32
		// Lanes 0 and 1 race on index 5 with values 50 and 60.
		idx[0], val[0] = 5, 50
		idx[1], val[1] = 5, 60
		idx[2], val[2] = 6, 120 // loses to existing 100
		old = w.AtomicMinU32(buf, &idx, &val, MaskFirstN(3))
	})
	if buf.U32(5) != 50 {
		t.Errorf("buf[5] = %d, want 50", buf.U32(5))
	}
	if buf.U32(6) != 100 {
		t.Errorf("buf[6] = %d, want 100 (atomicMin must not raise)", buf.U32(6))
	}
	if old[0] != 100 {
		t.Errorf("lane 0 old = %d, want 100", old[0])
	}
	if old[1] != 50 {
		t.Errorf("lane 1 old = %d, want 50 (serialized after lane 0)", old[1])
	}
}

func TestAtomicCASU32(t *testing.T) {
	d := testDevice()
	buf := d.Arena().MustAlloc("labels", memsys.SpaceGPU, 256)
	buf.PutU32(0, 7)
	var old [WarpSize]uint32
	d.Launch("k", 1, func(w *Warp) {
		var idx [WarpSize]int64
		var cmp, val [WarpSize]uint32
		cmp[0], val[0] = 7, 9  // succeeds
		cmp[1], val[1] = 7, 11 // fails: lane 0 already changed it
		old = w.AtomicCASU32(buf, &idx, &cmp, &val, MaskFirstN(2))
	})
	if buf.U32(0) != 9 {
		t.Errorf("buf[0] = %d, want 9", buf.U32(0))
	}
	if old[0] != 7 || old[1] != 9 {
		t.Errorf("old = %d,%d want 7,9", old[0], old[1])
	}
}

func TestScatterU64(t *testing.T) {
	d := testDevice()
	buf := d.Arena().MustAlloc("g", memsys.SpaceGPU, 512)
	d.Launch("k", 1, func(w *Warp) {
		var idx [WarpSize]int64
		var val [WarpSize]uint64
		for i := range idx {
			idx[i] = int64(i)
			val[i] = uint64(i * i)
		}
		w.ScatterU64(buf, &idx, &val, MaskFull)
	})
	for i := int64(0); i < WarpSize; i++ {
		if got := buf.U64(i); got != uint64(i*i) {
			t.Errorf("buf[%d] = %d, want %d", i, got, i*i)
		}
	}
}
