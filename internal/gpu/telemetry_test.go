package gpu

import (
	"testing"
	"time"

	"repro/internal/memsys"
	"repro/internal/pcie"
)

func telemetryTestDevice(workers int) *Device {
	return NewDevice(Config{
		Name:     "tel-test",
		Workers:  workers,
		HBM:      memsys.HBM2V100(),
		HostDRAM: memsys.DDR4Quad(),
		Link:     pcie.Gen3x16(),
	})
}

// countingTelemetry records how often each hook fired.
type countingTelemetry struct {
	begins, ends, kernels, copies, rounds int
	lastLabels                            RunLabels
	lastWorkers, lastMax                  int
	lastStart, lastEnd                    time.Duration
}

func (c *countingTelemetry) RunBegin(dev *Device, labels RunLabels) {
	c.begins++
	c.lastLabels = labels
}
func (c *countingTelemetry) RunEnd(dev *Device) { c.ends++ }
func (c *countingTelemetry) KernelDone(dev *Device, ks *KernelStats, workers, maxWorkers int, start, end time.Duration) {
	c.kernels++
	c.lastWorkers, c.lastMax = workers, maxWorkers
	c.lastStart, c.lastEnd = start, end
}
func (c *countingTelemetry) CopyDone(dev *Device, toDevice bool, bytes int64, start, end time.Duration) {
	c.copies++
}
func (c *countingTelemetry) RoundDone(dev *Device, name string, round int, start, end time.Duration) {
	c.rounds++
}

// TestTelemetryHooksFire checks each hook point fires with sane arguments.
func TestTelemetryHooksFire(t *testing.T) {
	d := telemetryTestDevice(2)
	tel := &countingTelemetry{}
	d.SetTelemetry(tel)
	if d.Telemetry() != Telemetry(tel) {
		t.Fatalf("Telemetry() did not return the attached sink")
	}

	d.BeginRun(RunLabels{App: "test", Variant: "v", Transport: "zerocopy", Graph: "g"})
	buf := d.Arena().MustAlloc("buf", memsys.SpaceHostPinned, 1<<12)
	defer d.Arena().Free(buf)

	roundStart := d.Clock()
	d.Launch("k", 4, func(w *Warp) {
		var idx [WarpSize]int64
		for l := range idx {
			idx[l] = int64(w.ID()*WarpSize + l)
		}
		w.GatherU32(buf, &idx, MaskFull)
	})
	d.EmitRound("k", 0, roundStart)
	d.CopyToDevice(4096)
	d.CopyToHost(4096)
	d.EndRun()

	if tel.begins != 1 || tel.ends != 1 {
		t.Errorf("begins/ends = %d/%d, want 1/1", tel.begins, tel.ends)
	}
	if tel.lastLabels.App != "test" || tel.lastLabels.Graph != "g" {
		t.Errorf("labels not forwarded: %+v", tel.lastLabels)
	}
	if tel.kernels != 1 {
		t.Errorf("kernels = %d, want 1", tel.kernels)
	}
	if tel.lastWorkers < 1 || tel.lastWorkers > tel.lastMax {
		t.Errorf("workers %d outside [1, %d]", tel.lastWorkers, tel.lastMax)
	}
	if tel.lastMax != 2 {
		t.Errorf("maxWorkers = %d, want configured 2", tel.lastMax)
	}
	if tel.lastEnd <= tel.lastStart {
		t.Errorf("kernel interval [%v, %v] not positive", tel.lastStart, tel.lastEnd)
	}
	if got, want := tel.lastEnd-tel.lastStart, d.Kernels()[0].Elapsed; got != want {
		t.Errorf("kernel interval %v does not match stats elapsed %v", got, want)
	}
	if tel.copies != 2 {
		t.Errorf("copies = %d, want 2", tel.copies)
	}
	if tel.rounds != 1 {
		t.Errorf("rounds = %d, want 1", tel.rounds)
	}
}

// TestDisabledTelemetryHooksDoNotAllocate is the zero-overhead contract:
// with no sink attached, the hook call sites must not allocate at all.
func TestDisabledTelemetryHooksDoNotAllocate(t *testing.T) {
	d := telemetryTestDevice(1)
	labels := RunLabels{App: "BFS", Variant: "Merged+Aligned", Transport: "zerocopy", Graph: "GK"}
	allocs := testing.AllocsPerRun(100, func() {
		d.BeginRun(labels)
		d.EmitRound("bfs", 3, d.Clock())
		d.EndRun()
	})
	if allocs != 0 {
		t.Errorf("disabled telemetry hooks allocate %.1f objects per run, want 0", allocs)
	}
}

// launchOnce runs one small gather kernel, for the telemetry-overhead
// benchmarks below.
func launchOnce(d *Device, buf *memsys.Buffer) {
	d.Launch("bench", 8, func(w *Warp) {
		var idx [WarpSize]int64
		for l := range idx {
			idx[l] = int64((w.ID()*WarpSize + l) % 64)
		}
		w.GatherU32(buf, &idx, MaskFull)
	})
}

// BenchmarkLaunchTelemetryDisabled measures the hot launch path with no
// sink attached; compare allocs/op against BenchmarkLaunchTelemetryEnabled
// to see the exporter's cost, and against a pre-telemetry checkout to
// confirm the disabled path is free.
func BenchmarkLaunchTelemetryDisabled(b *testing.B) {
	d := telemetryTestDevice(1)
	buf := d.Arena().MustAlloc("buf", memsys.SpaceHostPinned, 1<<12)
	defer d.Arena().Free(buf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		launchOnce(d, buf)
	}
}

type nopTelemetry struct{}

func (nopTelemetry) RunBegin(*Device, RunLabels) {}
func (nopTelemetry) RunEnd(*Device)              {}
func (nopTelemetry) KernelDone(*Device, *KernelStats, int, int, time.Duration, time.Duration) {
}
func (nopTelemetry) CopyDone(*Device, bool, int64, time.Duration, time.Duration) {}
func (nopTelemetry) RoundDone(*Device, string, int, time.Duration, time.Duration) {
}

// BenchmarkLaunchTelemetryEnabled is the same launch with a no-op sink, so
// the delta to Disabled is exactly the hook dispatch overhead.
func BenchmarkLaunchTelemetryEnabled(b *testing.B) {
	d := telemetryTestDevice(1)
	d.SetTelemetry(nopTelemetry{})
	buf := d.Arena().MustAlloc("buf", memsys.SpaceHostPinned, 1<<12)
	defer d.Arena().Free(buf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		launchOnce(d, buf)
	}
}
