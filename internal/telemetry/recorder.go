package telemetry

import (
	"sort"
	"sync"
	"time"
)

// The flight recorder keeps the last N completed request records in a
// fixed-size ring, the way an aircraft recorder keeps the last minutes of
// flight: always on, bounded memory, and most useful right after
// something went wrong. GET /debug/requests serves the ring newest-first;
// GET /debug/requests/slowest serves the slowest survivors (see
// server.go).

// RequestRecord is one completed request's lifecycle: identity, outcome,
// stage timings, and the recovery machinery it exercised. It is the JSON
// schema of /debug/requests.
type RequestRecord struct {
	// TraceID is the request's trace identifier (inbound X-Request-ID or
	// generated).
	TraceID string `json:"trace_id"`
	// Dataset, Algo, Src, and Variant identify the traversal requested.
	Dataset string `json:"dataset"`
	Algo    string `json:"algo"`
	Src     int    `json:"src"`
	Variant string `json:"variant,omitempty"`
	// Outcome is the request's final disposition, matching the `outcome`
	// label of emogi_serve_requests_total: ok, cached, canceled, rejected,
	// or error.
	Outcome string `json:"outcome"`
	// Error carries the error message for non-ok outcomes.
	Error string `json:"error,omitempty"`
	// Start is the wall-clock time the request entered the service.
	Start time.Time `json:"start"`
	// WallNS is the request's total wall time in nanoseconds; the stage
	// durations sum to it up to scheduler handoff slop.
	WallNS int64 `json:"wall_ns"`
	// Stages are the lifecycle spans in recording order.
	Stages []Span `json:"stages"`
	// Rounds is the number of engine rounds the final attempt ran;
	// RoundSpans holds their simulated-clock intervals (capped, see
	// maxTraceRounds).
	Rounds     int         `json:"rounds,omitempty"`
	RoundSpans []RoundSpan `json:"round_spans,omitempty"`
	// Retries is the number of re-attempts after transient faults.
	Retries int `json:"retries,omitempty"`
	// FaultsSurvived is the number of injected faults the request's failed
	// attempts absorbed before the outcome.
	FaultsSurvived uint64 `json:"faults_survived,omitempty"`
	// Degraded marks a request answered on the UVM fallback transport.
	Degraded bool `json:"degraded,omitempty"`
	// Batched marks a request that rode a coalesced batch; BatchLanes is
	// the number of distinct sources the batch carried.
	Batched    bool `json:"batched,omitempty"`
	BatchLanes int  `json:"batch_lanes,omitempty"`
	// SimElapsedNS is the simulated device time of the run that produced
	// the result (zero for cached and failed requests).
	SimElapsedNS int64 `json:"sim_elapsed_ns,omitempty"`
}

// DefaultRecorderCapacity is the ring size NewRecorder selects for
// capacity <= 0.
const DefaultRecorderCapacity = 256

// Recorder is the fixed-size ring of completed request records. All
// methods are safe for concurrent use. A nil *Recorder is inert: Record
// is a no-op and the accessors return empty results, so the disabled path
// costs call sites a nil check and nothing else.
type Recorder struct {
	mu    sync.Mutex
	ring  []RequestRecord
	next  int    // ring slot the next record lands in
	size  int    // occupied slots (== len(ring) once the ring wrapped)
	total uint64 // records ever added, including evicted ones
}

// NewRecorder creates a recorder keeping the last capacity records
// (DefaultRecorderCapacity when capacity <= 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRecorderCapacity
	}
	return &Recorder{ring: make([]RequestRecord, capacity)}
}

// Capacity returns the ring size.
func (r *Recorder) Capacity() int {
	if r == nil {
		return 0
	}
	return len(r.ring)
}

// Record adds one completed request, evicting the oldest when the ring is
// full.
func (r *Recorder) Record(rec RequestRecord) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.ring[r.next] = rec
	r.next = (r.next + 1) % len(r.ring)
	if r.size < len(r.ring) {
		r.size++
	}
	r.total++
	r.mu.Unlock()
}

// Len returns the number of records currently held.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.size
}

// Total returns the number of records ever added, including evicted ones.
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Snapshot returns the held records newest-first (the eviction order
// reversed: index 0 is the most recently completed request).
func (r *Recorder) Snapshot() []RequestRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]RequestRecord, 0, r.size)
	for i := 1; i <= r.size; i++ {
		out = append(out, r.ring[(r.next-i+len(r.ring))%len(r.ring)])
	}
	return out
}

// Slowest returns up to k held records sorted by descending wall time
// (ties broken newest-first).
func (r *Recorder) Slowest(k int) []RequestRecord {
	recs := r.Snapshot() // newest-first, so stable sort keeps newest ahead on ties
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].WallNS > recs[j].WallNS })
	if k > 0 && len(recs) > k {
		recs = recs[:k]
	}
	return recs
}
