// Package telemetry is the simulator's observability subsystem: a
// dependency-free Prometheus-text-exposition metrics registry, a Chrome
// trace-event timeline writer, and a Collector that implements the gpu
// package's Telemetry hook interface to snapshot every simulated quantity —
// per-launch kernel stats deltas, the PCIe monitor's request-size histogram
// and wire bytes, UVM fault and eviction counts, and launch-engine worker
// utilization — under the emogi_ metric namespace with app / transport /
// variant / graph labels.
//
// The design mirrors a production GPU metrics exporter (one registry, one
// collector per signal source, an HTTP /metrics endpoint) so a simulated
// run is inspectable exactly the way a real fleet GPU is, but it reports
// the *simulated* clock and the *simulated* interconnect: the quantities
// the paper needed an FPGA PCIe traffic monitor to observe (§3.2, §5).
//
// Telemetry is strictly opt-in. A device with no sink attached pays a
// single nil check per hook site and zero allocations (see gpu.Telemetry),
// preserving the parallel engine's bit-for-bit determinism contract.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Labels is one metric series' label set. Keys and values are rendered in
// sorted key order, so any two equal maps address the same series.
type Labels map[string]string

// labelKey renders labels canonically for series lookup and exposition:
// `key1="v1",key2="v2"` with keys sorted and values escaped.
func labelKey(ls Labels) string {
	if len(ls) == 0 {
		return ""
	}
	keys := make([]string, 0, len(ls))
	for k := range ls {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(ls[k]))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabelValue applies the exposition-format escapes for label values:
// backslash, double quote, and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp applies the exposition-format escapes for HELP text.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// metricKind is the TYPE line value of a metric family.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// family is one metric name: its metadata and every labeled series.
type family struct {
	name string
	help string
	kind metricKind

	series map[string]metric // keyed by labelKey
	order  []string          // series keys in creation order
}

// metric is one series of a family; each kind renders itself.
type metric interface {
	write(w io.Writer, name, lk string) error
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. The zero value is not usable; call NewRegistry. All
// methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // family names in creation order
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// getFamily returns the named family, creating it on first use and
// panicking when a name is reused with a different kind (a programming
// error worth failing loudly on).
func (r *Registry) getFamily(name, help string, kind metricKind) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]metric)}
		r.families[name] = f
		r.order = append(r.order, name)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s and %s", name, f.kind, kind))
	}
	return f
}

// Counter is a monotonically increasing integer series. The simulator's
// quantities are exact integer counts (requests, bytes, launches), so
// counters hold uint64 and render without float formatting — a scrape can
// be compared bit-for-bit against the bench tables.
type Counter struct {
	mu sync.Mutex
	v  uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	c.mu.Lock()
	c.v += n
	c.mu.Unlock()
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

func (c *Counter) write(w io.Writer, name, lk string) error {
	_, err := fmt.Fprintf(w, "%s%s %d\n", name, wrapLabels(lk), c.Value())
	return err
}

// FloatCounter is a monotonically increasing float series, for accumulated
// simulated seconds.
type FloatCounter struct {
	mu sync.Mutex
	v  float64
}

// Add increments the counter by v (which must be non-negative).
func (c *FloatCounter) Add(v float64) {
	c.mu.Lock()
	c.v += v
	c.mu.Unlock()
}

// Value returns the current value.
func (c *FloatCounter) Value() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

func (c *FloatCounter) write(w io.Writer, name, lk string) error {
	_, err := fmt.Fprintf(w, "%s%s %s\n", name, wrapLabels(lk), formatFloat(c.Value()))
	return err
}

// Gauge is a series that can go up and down.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

func (g *Gauge) write(w io.Writer, name, lk string) error {
	_, err := fmt.Fprintf(w, "%s%s %s\n", name, wrapLabels(lk), formatFloat(g.Value()))
	return err
}

// Histogram is a fixed-bucket cumulative histogram (Prometheus semantics:
// each le bucket counts observations ≤ its bound, plus an implicit +Inf).
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64 // ascending, excluding +Inf
	buckets []uint64  // len(bounds)+1; last is +Inf
	count   uint64
	sum     float64
}

// newHistogram copies and sorts the bounds.
func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, buckets: make([]uint64, len(bs)+1)}
}

// Observe records one observation of value v.
func (h *Histogram) Observe(v float64) { h.ObserveN(v, 1) }

// ObserveN records n observations of value v.
func (h *Histogram) ObserveN(v float64, n uint64) {
	if n == 0 {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i] += n
	h.count += n
	h.sum += v * float64(n)
	h.mu.Unlock()
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

func (h *Histogram) write(w io.Writer, name, lk string) error {
	h.mu.Lock()
	bounds := h.bounds
	buckets := append([]uint64(nil), h.buckets...)
	count, sum := h.count, h.sum
	h.mu.Unlock()

	cum := uint64(0)
	for i, b := range bounds {
		cum += buckets[i]
		if err := writeBucket(w, name, lk, formatFloat(b), cum); err != nil {
			return err
		}
	}
	cum += buckets[len(bounds)]
	if err := writeBucket(w, name, lk, "+Inf", cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, wrapLabels(lk), formatFloat(sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, wrapLabels(lk), count)
	return err
}

// writeBucket renders one cumulative le bucket, splicing the le label into
// the series' label set.
func writeBucket(w io.Writer, name, lk, le string, cum uint64) error {
	lel := `le="` + le + `"`
	if lk != "" {
		lel = lk + "," + lel
	}
	_, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", name, lel, cum)
	return err
}

// Counter returns the counter series for (name, labels), creating the
// family and series on first use.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, kindCounter)
	lk := labelKey(labels)
	if m, ok := f.series[lk]; ok {
		return m.(*Counter)
	}
	c := &Counter{}
	f.series[lk] = c
	f.order = append(f.order, lk)
	return c
}

// FloatCounter returns the float-counter series for (name, labels). It
// shares the counter TYPE, so mixing Counter and FloatCounter under one
// name is rejected at the family level only if kinds differ — use distinct
// names for integer and float counters.
func (r *Registry) FloatCounter(name, help string, labels Labels) *FloatCounter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, kindCounter)
	lk := labelKey(labels)
	if m, ok := f.series[lk]; ok {
		return m.(*FloatCounter)
	}
	c := &FloatCounter{}
	f.series[lk] = c
	f.order = append(f.order, lk)
	return c
}

// Gauge returns the gauge series for (name, labels).
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, kindGauge)
	lk := labelKey(labels)
	if m, ok := f.series[lk]; ok {
		return m.(*Gauge)
	}
	g := &Gauge{}
	f.series[lk] = g
	f.order = append(f.order, lk)
	return g
}

// Histogram returns the histogram series for (name, labels) with the given
// upper bucket bounds (+Inf is implicit). Bounds are fixed at series
// creation; later calls ignore the argument.
func (r *Registry) Histogram(name, help string, bounds []float64, labels Labels) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, kindHistogram)
	lk := labelKey(labels)
	if m, ok := f.series[lk]; ok {
		return m.(*Histogram)
	}
	h := newHistogram(bounds)
	f.series[lk] = h
	f.order = append(f.order, lk)
	return h
}

// WritePrometheus renders every family in the text exposition format:
// # HELP and # TYPE lines followed by one line per series, families in
// name order, series in creation order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	r.mu.Unlock()
	sort.Strings(names)

	for _, name := range names {
		r.mu.Lock()
		f := r.families[name]
		keys := append([]string(nil), f.order...)
		series := make([]metric, len(keys))
		for i, k := range keys {
			series[i] = f.series[k]
		}
		help, kind := f.help, f.kind
		r.mu.Unlock()

		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(help)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, kind); err != nil {
			return err
		}
		for i, m := range series {
			if err := m.write(w, name, keys[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// wrapLabels renders a non-empty label key as {k="v",...}.
func wrapLabels(lk string) string {
	if lk == "" {
		return ""
	}
	return "{" + lk + "}"
}

// formatFloat renders a float the way Prometheus clients do: shortest
// round-trip representation, with +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
