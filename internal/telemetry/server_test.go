package telemetry

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("emogi_kernel_launches_total", "Kernel launches.", Labels{"app": "BFS"}).Add(5)

	srv, err := ListenAndServe("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("reading %s body: %v", path, err)
		}
		return resp, string(body)
	}

	resp, body := get("/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics content type %q lacks exposition version", ct)
	}
	if !strings.Contains(body, `emogi_kernel_launches_total{app="BFS"} 5`) {
		t.Errorf("/metrics body missing series:\n%s", body)
	}
	validateExposition(t, body)

	resp, body = get("/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status %d", resp.StatusCode)
	}
	if !strings.Contains(body, `"status":"ok"`) {
		t.Errorf("/healthz body %q", body)
	}

	// Writes to /metrics are rejected.
	post, err := http.Post("http://"+srv.Addr()+"/metrics", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics status %d, want 405", post.StatusCode)
	}
}

func TestServerBadAddressFailsFast(t *testing.T) {
	if _, err := ListenAndServe("256.0.0.1:bad", NewRegistry()); err == nil {
		t.Fatalf("expected bind error")
	}
}
