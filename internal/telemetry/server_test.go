package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("emogi_kernel_launches_total", "Kernel launches.", Labels{"app": "BFS"}).Add(5)

	srv, err := ListenAndServe("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("reading %s body: %v", path, err)
		}
		return resp, string(body)
	}

	resp, body := get("/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics content type %q lacks exposition version", ct)
	}
	if !strings.Contains(body, `emogi_kernel_launches_total{app="BFS"} 5`) {
		t.Errorf("/metrics body missing series:\n%s", body)
	}
	validateExposition(t, body)

	resp, body = get("/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status %d", resp.StatusCode)
	}
	if !strings.Contains(body, `"status": "ok"`) || !strings.Contains(body, `"serving": true`) {
		t.Errorf("/healthz body %q", body)
	}

	// Writes to /metrics are rejected.
	post, err := http.Post("http://"+srv.Addr()+"/metrics", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics status %d, want 405", post.StatusCode)
	}
}

func TestServerBadAddressFailsFast(t *testing.T) {
	if _, err := ListenAndServe("256.0.0.1:bad", NewRegistry()); err == nil {
		t.Fatalf("expected bind error")
	}
}

// TestHandlerDebugRequests exercises the flight-recorder endpoints: JSON
// schema, newest-first and slowest-first ordering, the limit parameter,
// and rejection of junk limits.
func TestHandlerDebugRequests(t *testing.T) {
	recd := NewRecorder(4)
	recd.Record(RequestRecord{TraceID: "a", Outcome: "ok", WallNS: 300,
		Stages: []Span{{Stage: StageAdmission, DurNS: 10}}})
	recd.Record(RequestRecord{TraceID: "b", Outcome: "error", WallNS: 900})
	recd.Record(RequestRecord{TraceID: "c", Outcome: "ok", WallNS: 100})
	h := NewHandler(HandlerOptions{Registry: NewRegistry(), Recorder: recd})

	get := func(path string) (*httptest.ResponseRecorder, requestsPayload) {
		t.Helper()
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, path, nil))
		var p requestsPayload
		if rr.Code == http.StatusOK {
			if err := json.Unmarshal(rr.Body.Bytes(), &p); err != nil {
				t.Fatalf("GET %s body: %v (%q)", path, err, rr.Body.String())
			}
		}
		return rr, p
	}

	rr, p := get("/debug/requests")
	if rr.Code != http.StatusOK {
		t.Fatalf("/debug/requests = %d", rr.Code)
	}
	if p.Total != 3 || p.Capacity != 4 || len(p.Requests) != 3 {
		t.Fatalf("payload total=%d capacity=%d len=%d, want 3/4/3", p.Total, p.Capacity, len(p.Requests))
	}
	if p.Requests[0].TraceID != "c" || p.Requests[2].TraceID != "a" {
		t.Errorf("not newest-first: %q ... %q", p.Requests[0].TraceID, p.Requests[2].TraceID)
	}
	if len(p.Requests[2].Stages) != 1 || p.Requests[2].Stages[0].Stage != StageAdmission {
		t.Errorf("record lost its stage spans: %+v", p.Requests[2])
	}

	if _, p = get("/debug/requests?limit=1"); len(p.Requests) != 1 || p.Requests[0].TraceID != "c" {
		t.Errorf("limit=1 returned %+v", p.Requests)
	}
	if _, p = get("/debug/requests/slowest?limit=2"); len(p.Requests) != 2 ||
		p.Requests[0].TraceID != "b" || p.Requests[1].TraceID != "a" {
		t.Errorf("slowest?limit=2 returned wrong order: %+v", p.Requests)
	}
	if rr, _ = get("/debug/requests?limit=banana"); rr.Code != http.StatusBadRequest {
		t.Errorf("junk limit = %d, want 400", rr.Code)
	}
}

// TestHandlerUnknownRouteAndPprof: unregistered paths 404, and pprof is
// mounted only when asked for.
func TestHandlerUnknownRouteAndPprof(t *testing.T) {
	status := func(h http.Handler, path string) int {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, path, nil))
		return rr.Code
	}

	plain := NewHandler(HandlerOptions{Registry: NewRegistry()})
	if got := status(plain, "/no/such/route"); got != http.StatusNotFound {
		t.Errorf("unknown route = %d, want 404", got)
	}
	if got := status(plain, "/debug/pprof/cmdline"); got != http.StatusNotFound {
		t.Errorf("pprof without opt-in = %d, want 404", got)
	}
	withPprof := NewHandler(HandlerOptions{Registry: NewRegistry(), Pprof: true})
	if got := status(withPprof, "/debug/pprof/cmdline"); got != http.StatusOK {
		t.Errorf("pprof with opt-in = %d, want 200", got)
	}
}

// TestHandlerHealthzUnhealthy: /healthz surfaces an unhealthy device as
// 503 with the device detail in the body.
func TestHandlerHealthzUnhealthy(t *testing.T) {
	reg := NewRegistry()
	health := NewHealth(reg)
	for i := 0; i < 3; i++ {
		health.ObserveRun("gpu0", RunObservation{TransientFailure: true})
	}
	h := NewHandler(HandlerOptions{Registry: reg, Health: health})

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz with unhealthy device = %d, want 503", rr.Code)
	}
	var rep HealthReport
	if err := json.Unmarshal(rr.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Status != "unhealthy" || rep.Serving || len(rep.Devices) != 1 ||
		rep.Devices[0].State != "unhealthy" {
		t.Errorf("report = %+v", rep)
	}
}
