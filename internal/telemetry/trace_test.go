package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

// TestTracerWriteJSONSchema is the trace-schema acceptance test: the
// written timeline must be valid Chrome trace-event JSON (object form) with
// monotonically ordered simulated timestamps, loadable by Perfetto.
func TestTracerWriteJSONSchema(t *testing.T) {
	tracer := NewTracer()
	col := NewCollector(nil, tracer)
	dev := testDevice(t, 4, col)
	dev.Monitor().EnableTrace(1 << 12)
	g := testGraph(t)
	src := graph.PickSources(g, 1, 71)[0]
	dg, err := core.Upload(dev, g, core.UVM, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Run(dev, dg, core.AppBFS, src, core.MergedAligned); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := tracer.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}

	// Strict decode into the schema struct; then a generic decode to check
	// required top-level keys exist.
	var tf struct {
		TraceEvents     []TraceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if tf.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", tf.DisplayTimeUnit)
	}
	if len(tf.TraceEvents) == 0 {
		t.Fatalf("empty traceEvents")
	}

	kernels, rounds, uvmBursts, copies := 0, 0, 0, 0
	lastTS := -1.0
	sawComplete := false
	for i, ev := range tf.TraceEvents {
		switch ev.Ph {
		case "M":
			if sawComplete {
				t.Errorf("event %d: metadata after complete events", i)
			}
			if ev.Name != "process_name" && ev.Name != "thread_name" {
				t.Errorf("event %d: unexpected metadata %q", i, ev.Name)
			}
		case "X":
			sawComplete = true
			if ev.TS < lastTS {
				t.Errorf("event %d (%s): timestamp %v before predecessor %v — not monotonic",
					i, ev.Name, ev.TS, lastTS)
			}
			lastTS = ev.TS
			if ev.TS < 0 || ev.Dur < 0 {
				t.Errorf("event %d (%s): negative ts/dur", i, ev.Name)
			}
			if ev.PID <= 0 {
				t.Errorf("event %d (%s): pid %d not assigned", i, ev.Name, ev.PID)
			}
			switch ev.Cat {
			case "kernel":
				kernels++
			case "round":
				rounds++
			case "uvm":
				uvmBursts++
			case "copy":
				copies++
			default:
				t.Errorf("event %d: unknown category %q", i, ev.Cat)
			}
		default:
			t.Errorf("event %d: unexpected phase %q", i, ev.Ph)
		}
	}
	if got, want := kernels, len(dev.Kernels()); got != want {
		t.Errorf("trace has %d kernel events, device ran %d kernels", got, want)
	}
	if rounds == 0 {
		t.Errorf("no round events in trace")
	}
	if uvmBursts == 0 {
		t.Errorf("no UVM migration burst events in a UVM run")
	}
	if copies == 0 {
		t.Errorf("no bulk copy events in trace")
	}
	if tracer.Len() != kernels+rounds+uvmBursts+copies {
		t.Errorf("Len() = %d, trace holds %d events", tracer.Len(),
			kernels+rounds+uvmBursts+copies)
	}
}

// TestTracerKernelRequestStream checks the raw PCIe request stream embedded
// into kernel events reuses the monitor's trace (sizes, bulk markers).
func TestTracerKernelRequestStream(t *testing.T) {
	tracer := NewTracer()
	col := NewCollector(nil, tracer)
	dev := testDevice(t, 1, col)
	dev.Monitor().EnableTrace(1 << 12)
	if _, err := core.ToyTraverse(dev, 1<<12, core.ToyMergedAligned, core.ZeroCopy); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range tracer.Events() {
		if ev.Cat != "kernel" {
			continue
		}
		reqs, ok := ev.Args["pcie_requests"].([]string)
		if !ok || len(reqs) == 0 {
			continue
		}
		found = true
		for _, r := range reqs {
			switch r {
			case "32", "64", "96", "128", "32*", "64*", "96*", "128*":
			default:
				t.Errorf("unexpected request token %q", r)
			}
		}
	}
	if !found {
		t.Errorf("no kernel event carries a pcie_requests stream")
	}
}

// TestTracerEventsSorted covers out-of-order insertion across devices: the
// Events and WriteJSON views must sort by timestamp.
func TestTracerEventsSorted(t *testing.T) {
	tr := NewTracer()
	tr.Round("devB", "bfs", 1, 300*time.Microsecond, 400*time.Microsecond)
	tr.Round("devA", "bfs", 0, 100*time.Microsecond, 200*time.Microsecond)
	evs := tr.Events()
	if len(evs) != 2 || evs[0].TS > evs[1].TS {
		t.Fatalf("Events() not sorted: %+v", evs)
	}
}
