package telemetry

import (
	"sync"
	"time"
)

// The health subsystem turns the fault-injection and degradation signals
// the serving layer already tracks into operator-facing per-device health
// states, the way a fleet GPU metrics exporter classifies devices for its
// node-health controller. States derive from a sliding window of recent
// run observations — deterministic, documented rules (DESIGN.md §14) so a
// state can always be explained from the counters — plus a drain flag the
// service raises when shutdown begins. /healthz reports the result
// honestly: 503 while draining or while any device is unhealthy, so load
// balancers stop routing to a dying instance.

// HealthState is one device's classification.
type HealthState int

const (
	// StateHealthy: no recent faults, degradations, or failures.
	StateHealthy HealthState = iota
	// StateDegraded: the device is serving, but recent runs absorbed
	// injected faults or fell back to the UVM transport.
	StateDegraded
	// StateUnhealthy: recent runs are predominantly failing even after
	// retries — the device should be drained.
	StateUnhealthy
)

// String returns the state's wire name.
func (s HealthState) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateDegraded:
		return "degraded"
	case StateUnhealthy:
		return "unhealthy"
	default:
		return "unknown"
	}
}

// Health-state derivation parameters. The window slides per observed run,
// so a device recovers as cleanly as it degrades.
const (
	// healthWindow is the number of recent runs each device's state
	// derives from.
	healthWindow = 16
	// unhealthyConsecutive: this many consecutive transient failures flip
	// a device unhealthy immediately.
	unhealthyConsecutive = 3
	// unhealthyMinRuns and unhealthyFailRatio: with at least MinRuns in
	// the window, a failure ratio at or above FailRatio is unhealthy.
	unhealthyMinRuns   = 4
	unhealthyFailRatio = 0.5
)

// RunObservation is one completed run's health-relevant facts, reported
// by the serving layer after each executed request (cached answers touch
// no device and are not observed).
type RunObservation struct {
	// TransientFailure marks a run that failed with a transient fault
	// after the retry budget ran out.
	TransientFailure bool
	// Degraded marks a run answered on the UVM fallback transport.
	Degraded bool
	// Faults is the number of injected faults the run's attempts absorbed.
	Faults uint64
}

// DeviceHealth is one device's classified state, the JSON element of the
// /healthz device list.
type DeviceHealth struct {
	Device string    `json:"device"`
	State  string    `json:"state"`
	Reason string    `json:"reason,omitempty"`
	Since  time.Time `json:"since"`
	// Window counters explain the state: runs observed, runs that failed
	// transiently, runs that degraded, and faults absorbed, all within the
	// sliding window.
	WindowRuns     int    `json:"window_runs"`
	WindowFailures int    `json:"window_failures"`
	WindowDegraded int    `json:"window_degraded"`
	WindowFaults   uint64 `json:"window_faults"`
}

// HealthReport is the /healthz body.
type HealthReport struct {
	// Status is the instance-level summary: ok, degraded, unhealthy, or
	// draining.
	Status string `json:"status"`
	// Serving reports whether the instance should receive traffic; false
	// maps to HTTP 503.
	Serving  bool           `json:"serving"`
	Draining bool           `json:"draining"`
	Devices  []DeviceHealth `json:"devices,omitempty"`
}

// healthObs is one window slot.
type healthObs struct {
	failed   bool
	degraded bool
	faults   uint64
}

// deviceWindow is one device's sliding window and derived state.
type deviceWindow struct {
	name        string
	ring        [healthWindow]healthObs
	next, size  int
	consecFails int
	state       HealthState
	reason      string
	since       time.Time
	gauge       *Gauge // emogi_device_health_state series, when exporting
}

// Health derives per-device health states from run observations. All
// methods are safe for concurrent use. A nil *Health is inert, so the
// serving layer wires it unconditionally.
type Health struct {
	mu       sync.Mutex
	reg      *Registry // optional: exports state gauges
	devices  map[string]*deviceWindow
	order    []string
	draining bool
	drainG   *Gauge
}

// NewHealth creates a health tracker. When reg is non-nil, every device's
// state is exported as emogi_device_health_state{device} (0 healthy,
// 1 degraded, 2 unhealthy) plus an emogi_serve_draining gauge.
func NewHealth(reg *Registry) *Health {
	h := &Health{reg: reg, devices: make(map[string]*deviceWindow)}
	if reg != nil {
		h.drainG = reg.Gauge("emogi_serve_draining",
			"1 while the service is draining for shutdown.", nil)
	}
	return h
}

// device returns the named device's window, creating it healthy on first
// sight. Callers hold h.mu.
func (h *Health) device(name string) *deviceWindow {
	dw, ok := h.devices[name]
	if !ok {
		dw = &deviceWindow{name: name, state: StateHealthy, since: time.Now()}
		if h.reg != nil {
			dw.gauge = h.reg.Gauge("emogi_device_health_state",
				"Device health classification: 0 healthy, 1 degraded, 2 unhealthy.",
				Labels{"device": name})
		}
		h.devices[name] = dw
		h.order = append(h.order, name)
	}
	return dw
}

// RegisterDevice pre-creates a healthy entry so /healthz lists the device
// before any traffic arrives.
func (h *Health) RegisterDevice(name string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.device(name)
	h.mu.Unlock()
}

// ObserveRun folds one executed run into the device's window and
// rederives its state.
func (h *Health) ObserveRun(device string, obs RunObservation) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	dw := h.device(device)
	dw.ring[dw.next] = healthObs{failed: obs.TransientFailure, degraded: obs.Degraded, faults: obs.Faults}
	dw.next = (dw.next + 1) % healthWindow
	if dw.size < healthWindow {
		dw.size++
	}
	if obs.TransientFailure {
		dw.consecFails++
	} else {
		dw.consecFails = 0
	}
	dw.derive()
}

// derive reclassifies the device from its window. Callers hold h.mu.
func (dw *deviceWindow) derive() {
	failures, degraded := 0, 0
	var faults uint64
	for i := 0; i < dw.size; i++ {
		o := dw.ring[i]
		if o.failed {
			failures++
		}
		if o.degraded {
			degraded++
		}
		faults += o.faults
	}
	state, reason := StateHealthy, ""
	switch {
	case dw.consecFails >= unhealthyConsecutive:
		state = StateUnhealthy
		reason = "consecutive transient failures exhausted their retry budgets"
	case dw.size >= unhealthyMinRuns && float64(failures) >= unhealthyFailRatio*float64(dw.size):
		state = StateUnhealthy
		reason = "recent runs predominantly failing after retries"
	case degraded > 0:
		state = StateDegraded
		reason = "recent runs fell back to the UVM transport"
	case faults > 0:
		state = StateDegraded
		reason = "recent runs absorbed injected faults"
	}
	if state != dw.state {
		dw.state = state
		dw.since = time.Now()
	}
	dw.reason = reason
	if dw.gauge != nil {
		dw.gauge.Set(float64(state))
	}
}

// SetDraining raises (or clears) the drain flag. The service raises it
// when Close begins; while set, /healthz answers 503 so load balancers
// route away while in-flight requests finish.
func (h *Health) SetDraining(v bool) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.draining = v
	if h.drainG != nil {
		if v {
			h.drainG.Set(1)
		} else {
			h.drainG.Set(0)
		}
	}
	h.mu.Unlock()
}

// Draining reports whether the drain flag is set.
func (h *Health) Draining() bool {
	if h == nil {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.draining
}

// Report classifies the instance: per-device states plus the drain flag.
// Serving is false — HTTP 503 — while draining or while any device is
// unhealthy; a degraded instance keeps serving (it is still producing
// exact results, just slower or on the fallback transport).
func (h *Health) Report() HealthReport {
	if h == nil {
		return HealthReport{Status: "ok", Serving: true}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	rep := HealthReport{Status: "ok", Serving: true, Draining: h.draining}
	worst := StateHealthy
	for _, name := range h.order {
		dw := h.devices[name]
		failures, degraded := 0, 0
		var faults uint64
		for i := 0; i < dw.size; i++ {
			o := dw.ring[i]
			if o.failed {
				failures++
			}
			if o.degraded {
				degraded++
			}
			faults += o.faults
		}
		rep.Devices = append(rep.Devices, DeviceHealth{
			Device:         name,
			State:          dw.state.String(),
			Reason:         dw.reason,
			Since:          dw.since,
			WindowRuns:     dw.size,
			WindowFailures: failures,
			WindowDegraded: degraded,
			WindowFaults:   faults,
		})
		if dw.state > worst {
			worst = dw.state
		}
	}
	if worst > StateHealthy {
		rep.Status = worst.String()
	}
	if worst == StateUnhealthy {
		rep.Serving = false
	}
	if h.draining {
		rep.Status = "draining"
		rep.Serving = false
	}
	return rep
}
