package telemetry

import (
	"runtime"
	"runtime/debug"
)

// RegisterBuildInfo exports an emogi_build_info gauge with constant value 1
// and version / goversion / commit labels, the standard pattern for joining
// build metadata onto any other series in a dashboard. Values come from the
// binary's embedded module info; unknown fields export as "unknown" so the
// label schema is stable across build modes (module builds, test binaries,
// bare `go run`).
func RegisterBuildInfo(reg *Registry) {
	if reg == nil {
		return
	}
	version, commit := "unknown", "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				commit = s.Value
			}
		}
	}
	reg.Gauge("emogi_build_info",
		"Build metadata; constant 1 with version, goversion, and commit labels.",
		Labels{"version": version, "goversion": runtime.Version(), "commit": commit}).Set(1)
}
