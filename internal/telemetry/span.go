package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// Request-lifecycle tracing. Every service request carries a RequestTrace
// from admission to delivery: the serving layer records one Span per
// lifecycle stage (admission, queue wait, batch-coalescing wait, each
// retry attempt with its backoff, UVM degradation fallback, engine
// execution), and the Collector — bound to the trace for the duration of
// the request's exclusive device run — attributes round-boundary events
// to it. A completed trace becomes a flight-recorder RequestRecord (see
// recorder.go) and, when a Tracer is attached, a per-request track in the
// Chrome-trace timeline.
//
// Tracing is strictly opt-in, like the rest of the telemetry subsystem: a
// request with no trace attached (TraceFrom returns nil) costs the engine
// one context lookup per run and zero allocations on the hot path.

// Lifecycle stage names. These are the `stage` label values of the
// emogi_request_stage_seconds histograms and the Span.Stage values in
// flight-recorder records; DESIGN.md §14 documents the taxonomy.
const (
	// StageAdmission spans request validation and the cache lookup.
	StageAdmission = "admission"
	// StageQueue spans admission-queue wait: enqueue to worker pickup.
	StageQueue = "queue"
	// StageCoalesce spans the batch-coalescing wait: joining a pending
	// batch to the batch sealing (batched requests only).
	StageCoalesce = "coalesce"
	// StageBackoff spans one retry backoff wait (attempt number attached).
	StageBackoff = "backoff"
	// StageExecute spans one engine execution attempt (attempt number
	// attached; the final attempt is the one that produced the outcome).
	StageExecute = "execute"
	// StageDegrade spans the lazy UVM-fallback dataset load that precedes
	// degraded attempts.
	StageDegrade = "degrade"
)

// Stages lists every lifecycle stage, in lifecycle order. The service
// pre-registers one histogram series per entry so scrapes see the full
// schema deterministically.
func Stages() []string {
	return []string{StageAdmission, StageQueue, StageCoalesce, StageBackoff, StageExecute, StageDegrade}
}

// Span is one recorded lifecycle stage of a request. Offsets are
// wall-clock time relative to the trace's Begin, so a record's stage
// durations can be summed against its total wall time.
type Span struct {
	// Stage is the lifecycle stage name (Stage* constants).
	Stage string `json:"stage"`
	// Attempt is the 1-based attempt number for backoff/execute spans
	// under retry; zero elsewhere.
	Attempt int `json:"attempt,omitempty"`
	// StartNS is the span's start, in nanoseconds since the trace began.
	StartNS int64 `json:"start_ns"`
	// DurNS is the span's wall-clock duration in nanoseconds.
	DurNS int64 `json:"dur_ns"`
	// Detail optionally carries stage context: an error class for failed
	// attempts, the fallback transport for degrade spans.
	Detail string `json:"detail,omitempty"`
}

// RoundSpan is one engine round attributed to a request, on the simulated
// device clock (not wall time). The Collector records these through the
// existing RoundDone telemetry hook while the trace is bound.
type RoundSpan struct {
	// Name is the round label the engine emitted ("bfs", "sssp", ...).
	Name string `json:"name"`
	// Round is the round number (BFS level, relaxation sweep index).
	Round int `json:"round"`
	// StartUS and EndUS bound the round on the simulated clock, in
	// microseconds (matching the Chrome-trace timebase).
	StartUS float64 `json:"start_us"`
	EndUS   float64 `json:"end_us"`
	// Detail optionally carries round context: transport-decision entries
	// (Name "transport-decide") summarize the partition moves here.
	Detail string `json:"detail,omitempty"`
}

// maxTraceRounds bounds the per-request round list so a pathological
// million-round traversal cannot balloon the recorder; rounds beyond the
// cap are counted but not stored.
const maxTraceRounds = 512

// RequestTrace accumulates one request's lifecycle spans. All methods are
// safe for concurrent use (the service and the device goroutine both
// write). A nil *RequestTrace is inert: every method is a no-op, so call
// sites need no nil checks.
type RequestTrace struct {
	id    string
	begin time.Time

	mu     sync.Mutex
	spans  []Span
	rounds []RoundSpan
	// totalRounds counts every round observed, including ones dropped
	// beyond maxTraceRounds.
	totalRounds int
}

// NewRequestTrace starts a trace identified by id (generate one with
// NewTraceID when the caller did not supply an inbound request ID).
func NewRequestTrace(id string) *RequestTrace {
	return &RequestTrace{id: id, begin: time.Now()}
}

// ID returns the trace identifier.
func (t *RequestTrace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Begin returns the wall-clock time the trace started.
func (t *RequestTrace) Begin() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.begin
}

// Observe records one completed lifecycle stage that started at start and
// ended now. It returns the span's duration so callers can feed the same
// measurement into a histogram without a second clock read.
func (t *RequestTrace) Observe(stage string, attempt int, start time.Time, detail string) time.Duration {
	d := time.Since(start)
	if t == nil {
		return d
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{
		Stage:   stage,
		Attempt: attempt,
		StartNS: start.Sub(t.begin).Nanoseconds(),
		DurNS:   d.Nanoseconds(),
		Detail:  detail,
	})
	t.mu.Unlock()
	return d
}

// ObserveSpan records a fully formed span (used when replaying shared
// batch stages into every waiter's trace).
func (t *RequestTrace) ObserveSpan(sp Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
}

// Round records one engine round on the simulated clock. The Collector
// calls this from the RoundDone hook while the trace is bound to a run.
func (t *RequestTrace) Round(name string, round int, start, end time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.totalRounds++
	if len(t.rounds) < maxTraceRounds {
		t.rounds = append(t.rounds, RoundSpan{
			Name:    name,
			Round:   round,
			StartUS: usec(start),
			EndUS:   usec(end),
		})
	}
	t.mu.Unlock()
}

// Decision records one transport-policy decision point on the simulated
// clock as a "transport-decide" entry on the round timeline. Decisions
// share the rounds list (they interleave with rounds chronologically) but
// do not count toward the trace's round total.
func (t *RequestTrace) Decision(round int, detail string, start, end time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.rounds) < maxTraceRounds {
		t.rounds = append(t.rounds, RoundSpan{
			Name:    "transport-decide",
			Round:   round,
			StartUS: usec(start),
			EndUS:   usec(end),
			Detail:  detail,
		})
	}
	t.mu.Unlock()
}

// ReplayRounds folds rounds observed elsewhere into this trace — the
// serving layer uses it to attribute a shared batched run's rounds to
// every waiter that rode the batch. total counts rounds beyond the
// storage cap the source trace already dropped.
func (t *RequestTrace) ReplayRounds(rounds []RoundSpan, total int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.totalRounds += total
	if room := maxTraceRounds - len(t.rounds); room > 0 {
		if len(rounds) > room {
			rounds = rounds[:room]
		}
		t.rounds = append(t.rounds, rounds...)
	}
	t.mu.Unlock()
}

// Spans returns a copy of the recorded lifecycle spans in recording order.
func (t *RequestTrace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Rounds returns a copy of the recorded round spans (capped at
// maxTraceRounds) and the total number of rounds observed.
func (t *RequestTrace) Rounds() ([]RoundSpan, int) {
	if t == nil {
		return nil, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]RoundSpan(nil), t.rounds...), t.totalRounds
}

// traceIDSeq seeds the fallback trace-ID generator when the system random
// source is unavailable.
var traceIDSeq atomic.Uint64

// NewTraceID generates a 16-hex-character request identifier.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// The system random source failing is vanishingly rare; a process-
		// unique counter keeps IDs distinct within this process.
		seq := traceIDSeq.Add(1)
		for i := 0; i < 8; i++ {
			b[i] = byte(seq >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

// traceKey is the context key RequestTraces travel under.
type traceKey struct{}

// WithTrace attaches a request trace to a context; the System binds it to
// the device telemetry sink for the duration of the request's run.
func WithTrace(ctx context.Context, t *RequestTrace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the context's request trace, or nil. The nil path is
// allocation-free — the cost of disabled tracing is this one lookup per
// run, never per round or per warp.
func TraceFrom(ctx context.Context) *RequestTrace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey{}).(*RequestTrace)
	return t
}

// TraceBinder is implemented by telemetry sinks that can attribute device
// events to the request currently running on the device. The System binds
// the request's trace under the device's exclusive run lock, so at most
// one trace is bound at a time.
type TraceBinder interface {
	// BindTrace attaches rt as the destination for round events until
	// UnbindTrace.
	BindTrace(rt *RequestTrace)
	// UnbindTrace detaches the current trace.
	UnbindTrace()
}
