package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/pcie"
)

// The tracer emits the Chrome trace-event JSON format (the object form:
// {"traceEvents": [...]}), loadable in Perfetto or chrome://tracing. Each
// kernel launch, traversal round, UVM migration burst, and bulk copy
// becomes one complete ("ph":"X") event with simulated-clock timestamps in
// microseconds; devices map to trace processes and signal kinds to threads,
// named via metadata ("ph":"M") events.

// Track thread IDs within one device's trace process.
const (
	trackKernels   = 0
	trackRounds    = 1
	trackUVM       = 2
	trackCopies    = 3
	trackTransport = 4
)

// TraceEvent is one trace-event entry. Exported fields marshal to the
// trace-event JSON keys.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds of simulated time
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the object-form trace envelope.
type traceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// Tracer accumulates trace events. All methods are safe for concurrent
// use. The zero value is not usable; call NewTracer.
type Tracer struct {
	mu     sync.Mutex
	events []TraceEvent
	meta   []TraceEvent
	pids   map[string]int // device name -> trace process ID

	// Request-track state: completed service requests land in one trace
	// process ("requests"), one thread per request. Their timebase is
	// wall-clock offset from the first recorded request (device tracks use
	// the simulated clock; the two interleave in one file but measure
	// different things — see DESIGN.md §14).
	reqEpoch time.Time
	reqTID   int
}

// NewTracer creates an empty tracer.
func NewTracer() *Tracer {
	return &Tracer{pids: make(map[string]int)}
}

// pid returns the trace process ID for a device name, emitting the naming
// metadata events on first sight. Callers hold t.mu.
func (t *Tracer) pid(device string) int {
	if p, ok := t.pids[device]; ok {
		return p
	}
	p := len(t.pids) + 1
	t.pids[device] = p
	t.meta = append(t.meta,
		TraceEvent{Name: "process_name", Ph: "M", PID: p,
			Args: map[string]any{"name": device}},
		TraceEvent{Name: "thread_name", Ph: "M", PID: p, TID: trackKernels,
			Args: map[string]any{"name": "kernels"}},
		TraceEvent{Name: "thread_name", Ph: "M", PID: p, TID: trackRounds,
			Args: map[string]any{"name": "rounds"}},
		TraceEvent{Name: "thread_name", Ph: "M", PID: p, TID: trackUVM,
			Args: map[string]any{"name": "uvm migrations"}},
		TraceEvent{Name: "thread_name", Ph: "M", PID: p, TID: trackCopies,
			Args: map[string]any{"name": "bulk copies"}},
		TraceEvent{Name: "thread_name", Ph: "M", PID: p, TID: trackTransport,
			Args: map[string]any{"name": "transport decisions"}},
	)
	return p
}

// usec converts a simulated duration to trace-event microseconds.
func usec(d time.Duration) float64 {
	return float64(d) / float64(time.Microsecond)
}

// complete appends one complete event. Zero-duration events are given the
// interval as-is; chrome://tracing renders dur=0 slices as instants.
func (t *Tracer) complete(device, track string, tid int, name string, start, end time.Duration, args map[string]any) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = append(t.events, TraceEvent{
		Name: name,
		Cat:  track,
		Ph:   "X",
		TS:   usec(start),
		Dur:  usec(end - start),
		PID:  t.pid(device),
		TID:  tid,
		Args: args,
	})
}

// Kernel records one kernel launch spanning [start, end) of simulated
// time. requests optionally carries the raw per-request stream the PCIe
// monitor traced during the launch (pcie.TraceEntry is reused directly so
// the telemetry timeline and the FPGA-style stream view cannot drift
// apart); it is rendered compactly into the event args.
func (t *Tracer) Kernel(device, name string, start, end time.Duration, args map[string]any, requests []pcie.TraceEntry) {
	if len(requests) > 0 {
		if args == nil {
			args = make(map[string]any, 1)
		}
		args["pcie_requests"] = renderRequests(requests)
	}
	t.complete(device, "kernel", trackKernels, name, start, end, args)
}

// Round records one traversal round (BFS level / SSSP / CC sweep).
func (t *Tracer) Round(device, name string, round int, start, end time.Duration) {
	t.complete(device, "round", trackRounds, fmt.Sprintf("%s round %d", name, round),
		start, end, map[string]any{"round": round})
}

// TransportDecision records one transport-policy decision point: the
// partition rebinds a routed run applied at a round boundary, including
// the staging copies it charged.
func (t *Tracer) TransportDecision(device string, round int, detail string, start, end time.Duration) {
	t.complete(device, "transport", trackTransport,
		fmt.Sprintf("transport decide round %d", round), start, end,
		map[string]any{"round": round, "moves": detail})
}

// UVMBurst records one kernel's UVM migration burst: pages migrated while
// the kernel ran, spanning the kernel's interval on the UVM track.
func (t *Tracer) UVMBurst(device string, pages, evictions uint64, bytes uint64, start, end time.Duration) {
	t.complete(device, "uvm", trackUVM, "uvm migration burst", start, end, map[string]any{
		"pages":     pages,
		"evictions": evictions,
		"bytes":     bytes,
	})
}

// Copy records one explicit bulk transfer.
func (t *Tracer) Copy(device string, toDevice bool, bytes int64, start, end time.Duration) {
	name := "copy d2h"
	if toDevice {
		name = "copy h2d"
	}
	t.complete(device, "copy", trackCopies, name, start, end, map[string]any{
		"bytes": bytes,
	})
}

// requestPID returns the trace process ID of the shared "requests"
// process, creating and naming it on first use. Callers hold t.mu.
func (t *Tracer) requestPID() int {
	if p, ok := t.pids["requests"]; ok {
		return p
	}
	p := len(t.pids) + 1
	t.pids["requests"] = p
	t.meta = append(t.meta, TraceEvent{Name: "process_name", Ph: "M", PID: p,
		Args: map[string]any{"name": "requests"}})
	return p
}

// Request records one completed service request as its own thread in the
// "requests" trace process: one complete event per lifecycle span, with
// wall-clock timestamps offset from the first recorded request. outcome
// labels the thread alongside the trace ID.
func (t *Tracer) Request(id, outcome string, begin time.Time, spans []Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p := t.requestPID()
	if t.reqEpoch.IsZero() {
		t.reqEpoch = begin
	}
	t.reqTID++
	tid := t.reqTID
	t.meta = append(t.meta, TraceEvent{Name: "thread_name", Ph: "M", PID: p, TID: tid,
		Args: map[string]any{"name": fmt.Sprintf("req %s (%s)", id, outcome)}})
	// Requests completing out of order may have begun before the epoch;
	// Chrome trace timestamps may be negative, so the offset stands as-is.
	off := begin.Sub(t.reqEpoch)
	for _, sp := range spans {
		name := sp.Stage
		if sp.Attempt > 0 {
			name = fmt.Sprintf("%s #%d", sp.Stage, sp.Attempt)
		}
		args := map[string]any{"trace_id": id}
		if sp.Detail != "" {
			args["detail"] = sp.Detail
		}
		t.events = append(t.events, TraceEvent{
			Name: name,
			Cat:  "request",
			Ph:   "X",
			TS:   usec(off + time.Duration(sp.StartNS)),
			Dur:  float64(sp.DurNS) / float64(time.Microsecond),
			PID:  p,
			TID:  tid,
			Args: args,
		})
	}
}

// renderRequests formats a raw request trace compactly: one "<size>" or
// "<size>*" (bulk/DMA) token per request, matching pciemon's stream view.
func renderRequests(entries []pcie.TraceEntry) []string {
	out := make([]string, len(entries))
	for i, e := range entries {
		if e.Bulk {
			out[i] = fmt.Sprintf("%d*", e.Size)
		} else {
			out[i] = fmt.Sprintf("%d", e.Size)
		}
	}
	return out
}

// Len returns the number of recorded events, excluding naming metadata.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a copy of the recorded events (excluding metadata) in
// ascending timestamp order.
func (t *Tracer) Events() []TraceEvent {
	t.mu.Lock()
	evs := append([]TraceEvent(nil), t.events...)
	t.mu.Unlock()
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].TS < evs[j].TS })
	return evs
}

// WriteJSON renders the timeline in the object form of the Chrome
// trace-event format. Metadata events come first, then all recorded events
// sorted by simulated timestamp (stable, so same-timestamp events keep
// arrival order), guaranteeing a monotonically ordered timeline even when
// several devices interleave.
func (t *Tracer) WriteJSON(w io.Writer) error {
	t.mu.Lock()
	all := make([]TraceEvent, 0, len(t.meta)+len(t.events))
	all = append(all, t.meta...)
	evs := append([]TraceEvent(nil), t.events...)
	t.mu.Unlock()
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].TS < evs[j].TS })
	all = append(all, evs...)

	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: all, DisplayTimeUnit: "ms"})
}
