package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/gpu"
	"repro/internal/pcie"
	"repro/internal/uvm"
)

// Collector implements gpu.Telemetry: it snapshots every simulated quantity
// into a Registry (Prometheus counters, gauges, and the request-size
// histogram) and, when a Tracer is attached, into the Chrome-trace
// timeline. One Collector may observe any number of devices; per-device
// delta state distinguishes each device's monitor and UVM manager and
// survives their mid-run resets (ResetStats, ColdCaches) without double- or
// under-counting.
//
// Counters carry the run's app / graph / transport / variant labels (set by
// the core round loops via Device.BeginRun); device-level gauges carry a
// device label instead.
type Collector struct {
	mu     sync.Mutex
	reg    *Registry
	tracer *Tracer

	devs map[*gpu.Device]*devState
	util map[string]*utilAcc // worker utilization accumulators per label set

	// bound is the request trace currently attributed device events.
	// Binding happens under the device's exclusive run lock (see
	// System.Do), so at most one run — and one trace — is active at a time.
	bound *RequestTrace
}

// devState is the per-device delta-tracking state.
type devState struct {
	name   string // unique trace/gauge identity: "<config name> #<n>"
	labels gpu.RunLabels

	monGen   uint64 // monitor Reset generation at last snapshot
	mon      pcie.Snapshot
	dropped  uint64 // monitor TraceDropped at last snapshot
	traceLen int    // monitor trace length already forwarded to the tracer

	uvmgr *uvm.Manager // pointer identity detects ColdCaches replacement
	uvm   uvm.Stats
}

// utilAcc accumulates launch-engine worker usage for one label set.
type utilAcc struct {
	used  uint64 // worker goroutines that ran, summed over launches
	avail uint64 // workers the device could have used, summed over launches
}

// NewCollector creates a collector writing metrics into reg and, when
// tracer is non-nil, events into the timeline.
func NewCollector(reg *Registry, tracer *Tracer) *Collector {
	if reg == nil {
		reg = NewRegistry()
	}
	// Pre-register every (partition_class, choice) combination so scrapes
	// see the transport-decision schema deterministically, zeros included.
	for _, class := range []string{"hot", "warm", "cold"} {
		for _, choice := range []string{"zerocopy", "uvm", "staged"} {
			transportDecisionCounter(reg, class, choice)
		}
	}
	return &Collector{
		reg:    reg,
		tracer: tracer,
		devs:   make(map[*gpu.Device]*devState),
		util:   make(map[string]*utilAcc),
	}
}

// transportDecisionCounter returns the emogi_transport_decisions_total
// series for one (density class, substrate choice) pair.
func transportDecisionCounter(reg *Registry, class, choice string) *Counter {
	return reg.Counter("emogi_transport_decisions_total",
		"Transport-policy partition rebinds by access-density class and chosen substrate.",
		Labels{"partition_class": class, "choice": choice})
}

// Registry returns the registry the collector writes into.
func (c *Collector) Registry() *Registry { return c.reg }

// Tracer returns the attached tracer (nil when tracing is off).
func (c *Collector) Tracer() *Tracer { return c.tracer }

// state returns the per-device state, creating it on first sight. Callers
// hold c.mu.
func (c *Collector) state(dev *gpu.Device) *devState {
	st, ok := c.devs[dev]
	if !ok {
		st = &devState{
			name:  fmt.Sprintf("%s #%d", dev.Config().Name, len(c.devs)+1),
			uvmgr: dev.UVM(),
		}
		c.devs[dev] = st
	}
	return st
}

// runLabels renders the device's current run labels for counter series.
func (st *devState) runLabels() Labels {
	return Labels{
		"app":       st.labels.App,
		"graph":     st.labels.Graph,
		"transport": st.labels.Transport,
		"variant":   st.labels.Variant,
	}
}

// sizeBuckets are the request-size histogram bounds: the four coalesced
// zero-copy sizes (paper Figure 3) plus one page, catching UVM migration
// bulk requests and odd bulk remainders.
var sizeBuckets = []float64{32, 64, 96, 128, 4096}

// RunBegin implements gpu.Telemetry.
func (c *Collector) RunBegin(dev *gpu.Device, labels gpu.RunLabels) {
	c.mu.Lock()
	st := c.state(dev)
	st.labels = labels
	ls := st.runLabels()
	c.mu.Unlock()
	c.reg.Counter("emogi_runs_total",
		"Traversal runs started.", ls).Inc()
}

// RunEnd implements gpu.Telemetry.
func (c *Collector) RunEnd(dev *gpu.Device) {
	c.mu.Lock()
	c.state(dev).labels = gpu.RunLabels{}
	c.mu.Unlock()
}

// KernelDone implements gpu.Telemetry: it folds one launch's KernelStats
// delta, the monitor's growth since the previous event, and the UVM
// manager's growth into the registry, and appends the kernel (and any UVM
// migration burst) to the timeline.
func (c *Collector) KernelDone(dev *gpu.Device, ks *gpu.KernelStats, workers, maxWorkers int, start, end time.Duration) {
	c.mu.Lock()
	st := c.state(dev)
	ls := st.runLabels()
	monDelta, droppedDelta, avgBandwidth := c.monitorDelta(dev, st)
	uvmDelta := c.uvmDelta(dev, st)
	newEntries := c.traceEntriesDelta(dev, st)

	ua, ok := c.util[labelKey(ls)]
	if !ok {
		ua = &utilAcc{}
		c.util[labelKey(ls)] = ua
	}
	ua.used += uint64(workers)
	ua.avail += uint64(maxWorkers)
	utilization := float64(ua.used) / float64(ua.avail)
	devName := st.name
	c.mu.Unlock()

	reg := c.reg
	reg.Counter("emogi_kernel_launches_total",
		"Kernel launches completed.", ls).Inc()
	reg.Counter("emogi_kernel_warps_total",
		"Warps executed across kernel launches.", ls).Add(uint64(ks.Warps))
	reg.Counter("emogi_warp_instructions_total",
		"Warp instructions executed.", ls).Add(ks.WarpInstrs)
	reg.FloatCounter("emogi_kernel_sim_seconds_total",
		"Simulated kernel time, including launch overhead.", ls).Add(ks.Elapsed.Seconds())
	reg.Counter("emogi_hbm_bytes_total",
		"GPU global memory bytes moved by kernels.", ls).Add(ks.HBMBytes)
	reg.Counter("emogi_host_dram_bytes_total",
		"Host DRAM bytes served (includes 64B burst rounding).", ls).Add(ks.HostDRAMBytes)
	reg.Counter("emogi_pcie_requests_total",
		"Individual zero-copy PCIe read requests issued by kernels.", ls).Add(ks.PCIeRequests)
	reg.Counter("emogi_pcie_payload_bytes_total",
		"PCIe payload bytes issued by kernels (zero-copy reads plus UVM migrations).", ls).Add(ks.PCIePayloadBytes)
	reg.Counter("emogi_uvm_migrations_total",
		"UVM pages migrated host to GPU during kernels.", ls).Add(ks.UVMMigrations)
	reg.Counter("emogi_uvm_page_hits_total",
		"Kernel accesses served from already-resident UVM pages.", ls).Add(ks.UVMHits)
	reg.Counter("emogi_zc_refetches_total",
		"Zero-copy sector re-fetches charged by the L2 thrash model.", ls).Add(ks.ZCRefetches)
	reg.Counter("emogi_reorder_merged_requests_total",
		"Off-device requests eliminated by the coalescer's reorder window.", ls).Add(ks.ReorderMerged)
	reg.Counter("emogi_reorder_flushes_total",
		"Reorder window drains (warp ends and capacity flushes).", ls).Add(ks.ReorderFlushes)
	reg.Counter("emogi_reorder_window_sectors_total",
		"Buffered 32B sectors summed over reorder flushes; divide by flushes for mean window occupancy.", ls).Add(ks.ReorderWindowSectors)
	reg.Counter("emogi_launch_worker_shards_total",
		"Worker goroutines used, summed over launches.", ls).Add(uint64(workers))
	reg.Gauge("emogi_launch_worker_utilization_ratio",
		"Workers used over workers available, averaged over launches.", ls).Set(utilization)

	c.foldMonitor(ls, devName, monDelta, droppedDelta, avgBandwidth)
	reg.Counter("emogi_uvm_faults_total",
		"UVM page faults taken.", ls).Add(uvmDelta.Faults)
	reg.Counter("emogi_uvm_evictions_total",
		"UVM pages evicted from GPU memory.", ls).Add(uvmDelta.Evictions)

	if c.tracer != nil {
		c.tracer.Kernel(devName, ks.Name, start, end, map[string]any{
			"warps":          ks.Warps,
			"workers":        workers,
			"pcie_req_count": ks.PCIeRequests,
			"payload_bytes":  ks.PCIePayloadBytes,
			"hbm_bytes":      ks.HBMBytes,
		}, newEntries)
		if ks.UVMMigrations > 0 {
			pageBytes := uint64(dev.UVM().Config().PageBytes)
			c.tracer.UVMBurst(devName, ks.UVMMigrations, uvmDelta.Evictions,
				ks.UVMMigrations*pageBytes, start, end)
		}
	}
}

// CopyDone implements gpu.Telemetry.
func (c *Collector) CopyDone(dev *gpu.Device, toDevice bool, bytes int64, start, end time.Duration) {
	c.mu.Lock()
	st := c.state(dev)
	ls := st.runLabels()
	monDelta, droppedDelta, avgBandwidth := c.monitorDelta(dev, st)
	// Bulk copies are traced by the monitor too; keep the timeline's raw
	// request cursor in step even though copy events don't embed them.
	c.traceEntriesDelta(dev, st)
	devName := st.name
	c.mu.Unlock()

	dir := "d2h"
	if toDevice {
		dir = "h2d"
	}
	lsDir := Labels{"direction": dir}
	for k, v := range ls {
		lsDir[k] = v
	}
	c.reg.Counter("emogi_copy_bytes_total",
		"Explicit bulk transfer payload bytes by direction.", lsDir).Add(uint64(bytes))
	c.foldMonitor(ls, devName, monDelta, droppedDelta, avgBandwidth)

	if c.tracer != nil {
		c.tracer.Copy(devName, toDevice, bytes, start, end)
	}
}

// RoundDone implements gpu.Telemetry.
func (c *Collector) RoundDone(dev *gpu.Device, name string, round int, start, end time.Duration) {
	c.mu.Lock()
	st := c.state(dev)
	ls := st.runLabels()
	devName := st.name
	rt := c.bound
	c.mu.Unlock()

	c.reg.Counter("emogi_rounds_total",
		"Traversal rounds (BFS levels, SSSP/CC relaxation sweeps) completed.", ls).Inc()
	rt.Round(name, round, start, end)
	if c.tracer != nil {
		c.tracer.Round(devName, name, round, start, end)
	}
}

// TransportDecisions implements gpu.TransportDecisionSink: each decided
// round on a routed run feeds the emogi_transport_decisions_total counter
// and — while a request trace is bound — a "transport-decide" entry on
// that request's round timeline, plus a transport-track slice in the
// Chrome timeline.
func (c *Collector) TransportDecisions(dev *gpu.Device, round int, moves []gpu.TransportMove, start, end time.Duration) {
	c.mu.Lock()
	st := c.state(dev)
	devName := st.name
	rt := c.bound
	c.mu.Unlock()

	for _, mv := range moves {
		transportDecisionCounter(c.reg, mv.PartitionClass, mv.Choice).Add(mv.Count)
	}
	detail := transportMovesDetail(moves)
	rt.Decision(round, detail, start, end)
	if c.tracer != nil {
		c.tracer.TransportDecision(devName, round, detail, start, end)
	}
}

// transportMovesDetail renders a move group compactly, e.g.
// "hot>staged x3, cold>zerocopy x12".
func transportMovesDetail(moves []gpu.TransportMove) string {
	var b strings.Builder
	for i, mv := range moves {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s>%s x%d", mv.PartitionClass, mv.Choice, mv.Count)
	}
	return b.String()
}

// BindTrace implements TraceBinder: round events are attributed to rt
// until UnbindTrace. The System calls this under the device's exclusive
// run lock, so bindings never overlap.
func (c *Collector) BindTrace(rt *RequestTrace) {
	c.mu.Lock()
	c.bound = rt
	c.mu.Unlock()
}

// UnbindTrace implements TraceBinder.
func (c *Collector) UnbindTrace() {
	c.mu.Lock()
	c.bound = nil
	c.mu.Unlock()
}

// foldMonitor writes one monitor growth delta into the registry: wire
// bytes, the request-size histogram, trace drops, and the device's
// time-weighted bandwidth gauge.
func (c *Collector) foldMonitor(ls Labels, devName string, delta pcie.Snapshot, droppedDelta uint64, avgBandwidth float64) {
	reg := c.reg
	reg.Counter("emogi_pcie_wire_bytes_total",
		"PCIe wire bytes (payload plus per-request TLP overhead) crossing the link.", ls).Add(delta.WireBytes)
	reg.Counter("emogi_pcie_trace_dropped_total",
		"Raw request trace entries truncated at the monitor's EnableTrace limit.", ls).Add(droppedDelta)
	hist := reg.Histogram("emogi_pcie_request_size_bytes",
		"PCIe request payload sizes observed by the traffic monitor.", sizeBuckets, ls)
	for size, n := range delta.BySize {
		hist.ObserveN(float64(size), n)
	}
	reg.Gauge("emogi_pcie_bandwidth_bytes_per_second",
		"Time-weighted mean PCIe payload bandwidth since the device's last stats reset.",
		Labels{"device": devName}).Set(avgBandwidth)
}

// monitorDelta returns the monitor's growth since the device's previous
// telemetry event, resetting the baseline when the monitor itself was
// Reset in between. Callers hold c.mu.
func (c *Collector) monitorDelta(dev *gpu.Device, st *devState) (delta pcie.Snapshot, droppedDelta uint64, avgBandwidth float64) {
	mon := dev.Monitor()
	now := mon.Snapshot()
	dropped := mon.TraceDropped()
	if gen := mon.Generation(); gen != st.monGen {
		st.monGen = gen
		st.mon = pcie.Snapshot{}
		st.dropped = 0
		st.traceLen = 0
	}
	by := make(map[int64]uint64)
	for k, v := range now.BySize {
		if d := v - st.mon.BySize[k]; d > 0 {
			by[k] = d
		}
	}
	delta = pcie.Snapshot{
		Requests:     now.Requests - st.mon.Requests,
		PayloadBytes: now.PayloadBytes - st.mon.PayloadBytes,
		WireBytes:    now.WireBytes - st.mon.WireBytes,
		BySize:       by,
	}
	if dropped < st.dropped {
		st.dropped = 0 // EnableTrace re-armed the trace without a Reset
	}
	droppedDelta = dropped - st.dropped
	st.mon = now
	st.dropped = dropped
	return delta, droppedDelta, now.AvgBandwidth
}

// uvmDelta returns the UVM manager's stats growth since the previous
// event, resetting the baseline when the manager was replaced (ColdCaches)
// or reset. Callers hold c.mu.
func (c *Collector) uvmDelta(dev *gpu.Device, st *devState) uvm.Stats {
	mgr := dev.UVM()
	now := mgr.Stats()
	if mgr != st.uvmgr || now.Faults < st.uvm.Faults {
		st.uvmgr = mgr
		st.uvm = uvm.Stats{}
	}
	delta := uvm.Stats{
		Faults:         now.Faults - st.uvm.Faults,
		Migrations:     now.Migrations - st.uvm.Migrations,
		Evictions:      now.Evictions - st.uvm.Evictions,
		HostBytesMoved: now.HostBytesMoved - st.uvm.HostBytesMoved,
		HBMHits:        now.HBMHits - st.uvm.HBMHits,
	}
	st.uvm = now
	return delta
}

// traceEntriesDelta returns the monitor trace entries recorded since the
// previous event (the raw request stream of the launch that just
// finished), reusing pcie.TraceEntry directly. Callers hold c.mu.
func (c *Collector) traceEntriesDelta(dev *gpu.Device, st *devState) []pcie.TraceEntry {
	mon := dev.Monitor()
	if mon.TraceLimit() <= 0 {
		return nil
	}
	entries := mon.Trace()
	if st.traceLen > len(entries) {
		st.traceLen = 0 // monitor trace was cleared under us
	}
	delta := entries[st.traceLen:]
	st.traceLen = len(entries)
	if len(delta) == 0 {
		return nil
	}
	return append([]pcie.TraceEntry(nil), delta...)
}
