package telemetry

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/graph"
	"repro/internal/memsys"
	"repro/internal/pcie"
)

// testDevice builds an uncapped device on the calibrated Gen3 link with a
// collector attached.
func testDevice(t *testing.T, workers int, col *Collector) *gpu.Device {
	t.Helper()
	dev := gpu.NewDevice(gpu.Config{
		Name:     "test-v100",
		Workers:  workers,
		HBM:      memsys.HBM2V100(),
		HostDRAM: memsys.DDR4Quad(),
		Link:     pcie.Gen3x16(),
	})
	dev.SetTelemetry(col)
	return dev
}

func testGraph(t *testing.T) *graph.CSR {
	t.Helper()
	spec, err := graph.BySym("GK")
	if err != nil {
		t.Fatal(err)
	}
	return spec.Build(0.02, 42)
}

// sumSeries sums a counter family's value across every label set.
func sumSeries(t *testing.T, series map[string]string, name string) uint64 {
	t.Helper()
	var total uint64
	for k, v := range series {
		if k == name || strings.HasPrefix(k, name+"{") {
			total += mustUint(t, v)
		}
	}
	return total
}

// TestCollectorMatchesDeviceCounters is the exporter-accuracy acceptance
// check: after a real run the /metrics values must equal the device's own
// counters — the same numbers the bench tables print.
func TestCollectorMatchesDeviceCounters(t *testing.T) {
	col := NewCollector(nil, NewTracer())
	dev := testDevice(t, 4, col)
	dev.Monitor().EnableTrace(1 << 16)
	g := testGraph(t)
	src := graph.PickSources(g, 1, 71)[0]

	totalRounds := 0
	for _, transport := range []core.Transport{core.ZeroCopy, core.UVM} {
		dg, err := core.Upload(dev, g, transport, 8)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(dev, dg, core.AppBFS, src, core.MergedAligned)
		if err != nil {
			t.Fatal(err)
		}
		totalRounds += res.Iterations
	}

	out := render(t, col.Registry())
	validateExposition(t, out)
	series := parseSeries(t, out)

	if got, want := sumSeries(t, series, "emogi_kernel_launches_total"), uint64(len(dev.Kernels())); got != want {
		t.Errorf("emogi_kernel_launches_total = %d, want %d (len(dev.Kernels()))", got, want)
	}
	snap := dev.Monitor().Snapshot()
	if got := sumSeries(t, series, "emogi_pcie_wire_bytes_total"); got != snap.WireBytes {
		t.Errorf("emogi_pcie_wire_bytes_total = %d, want %d (monitor wire bytes)", got, snap.WireBytes)
	}
	if got := sumSeries(t, series, "emogi_pcie_request_size_bytes_count"); got != snap.Requests {
		t.Errorf("request size histogram count = %d, want %d (monitor requests)", got, snap.Requests)
	}
	total := dev.Total()
	if got := sumSeries(t, series, "emogi_warp_instructions_total"); got != total.WarpInstrs {
		t.Errorf("emogi_warp_instructions_total = %d, want %d", got, total.WarpInstrs)
	}
	if got := sumSeries(t, series, "emogi_hbm_bytes_total"); got != total.HBMBytes {
		t.Errorf("emogi_hbm_bytes_total = %d, want %d", got, total.HBMBytes)
	}
	if got := sumSeries(t, series, "emogi_pcie_requests_total"); got != total.PCIeRequests {
		t.Errorf("emogi_pcie_requests_total = %d, want %d", got, total.PCIeRequests)
	}
	if got := sumSeries(t, series, "emogi_uvm_migrations_total"); got != total.UVMMigrations {
		t.Errorf("emogi_uvm_migrations_total = %d, want %d", got, total.UVMMigrations)
	}
	if got := sumSeries(t, series, "emogi_pcie_trace_dropped_total"); got != dev.Monitor().TraceDropped() {
		t.Errorf("emogi_pcie_trace_dropped_total = %d, want %d", got, dev.Monitor().TraceDropped())
	}
	if got := sumSeries(t, series, "emogi_runs_total"); got != 2 {
		t.Errorf("emogi_runs_total = %d, want 2", got)
	}
	if got := sumSeries(t, series, "emogi_rounds_total"); got != uint64(totalRounds) {
		t.Errorf("emogi_rounds_total = %d, want %d", got, totalRounds)
	}

	// Labels set by the core round loop must address the series.
	zc := `emogi_kernel_launches_total{app="BFS",graph="` + g.Name +
		`",transport="zerocopy",variant="Merged+Aligned"}`
	if _, ok := series[zc]; !ok {
		t.Errorf("missing labeled series %s in:\n%s", zc, out)
	}
}

// TestCollectorReorderCounters runs a reorder-enabled device and checks the
// window's activity — merged requests, flushes, summed occupancy — lands on
// /metrics exactly as the device counts it.
func TestCollectorReorderCounters(t *testing.T) {
	col := NewCollector(nil, nil)
	dev := gpu.NewDevice(gpu.Config{
		Name:          "test-v100",
		HBM:           memsys.HBM2V100(),
		HostDRAM:      memsys.DDR4Quad(),
		Link:          pcie.Gen3x16(),
		ReorderWindow: 16,
	})
	dev.SetTelemetry(col)
	g := testGraph(t)
	src := graph.PickSources(g, 1, 71)[0]
	dg, err := core.Upload(dev, g, core.ZeroCopy, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Run(dev, dg, core.AppBFS, src, core.MergedAligned); err != nil {
		t.Fatal(err)
	}

	series := parseSeries(t, render(t, col.Registry()))
	total := dev.Total()
	if total.ReorderFlushes == 0 || total.ReorderWindowSectors == 0 {
		t.Fatalf("reorder stage did not engage: %+v", total)
	}
	for _, c := range []struct {
		name string
		want uint64
	}{
		{"emogi_reorder_merged_requests_total", total.ReorderMerged},
		{"emogi_reorder_flushes_total", total.ReorderFlushes},
		{"emogi_reorder_window_sectors_total", total.ReorderWindowSectors},
	} {
		if got := sumSeries(t, series, c.name); got != c.want {
			t.Errorf("%s = %d, want %d", c.name, got, c.want)
		}
	}
}

// TestCollectorTraceDroppedMetric drives the monitor past a tiny trace
// limit and checks the dropped-entry count surfaces as a counter.
func TestCollectorTraceDroppedMetric(t *testing.T) {
	col := NewCollector(nil, nil)
	dev := testDevice(t, 1, col)
	dev.Monitor().EnableTrace(8)

	g := testGraph(t)
	src := graph.PickSources(g, 1, 71)[0]
	dg, err := core.Upload(dev, g, core.ZeroCopy, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Run(dev, dg, core.AppBFS, src, core.MergedAligned); err != nil {
		t.Fatal(err)
	}
	if dev.Monitor().TraceDropped() == 0 {
		t.Fatalf("expected trace drops with limit 8")
	}
	series := parseSeries(t, render(t, col.Registry()))
	if got := sumSeries(t, series, "emogi_pcie_trace_dropped_total"); got != dev.Monitor().TraceDropped() {
		t.Errorf("dropped metric = %d, want %d", got, dev.Monitor().TraceDropped())
	}
}

// TestCollectorSurvivesStatsReset runs, resets device stats mid-stream,
// runs again: deltas must restart from the new generation without
// underflow, and the final counters must equal the sum of both segments.
func TestCollectorSurvivesStatsReset(t *testing.T) {
	col := NewCollector(nil, nil)
	dev := testDevice(t, 2, col)
	g := testGraph(t)
	src := graph.PickSources(g, 1, 71)[0]

	run := func() uint64 {
		dg, err := core.Upload(dev, g, core.ZeroCopy, 8)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := core.Run(dev, dg, core.AppBFS, src, core.Merged); err != nil {
			t.Fatal(err)
		}
		return dev.Monitor().Snapshot().WireBytes
	}
	first := run()
	dev.ResetStats()
	second := run()

	series := parseSeries(t, render(t, col.Registry()))
	if got, want := sumSeries(t, series, "emogi_pcie_wire_bytes_total"), first+second; got != want {
		t.Errorf("wire bytes across reset = %d, want %d (%d + %d)", got, want, first, second)
	}
}

// deterministicCounters are the metric families that must be bit-for-bit
// identical between a serial and a parallel run of the same workload (the
// launch-engine determinism contract extended to the exporter). Worker
// accounting and wall-clock-free gauges are excluded by construction:
// worker counts legitimately differ.
var deterministicCounters = []string{
	"emogi_kernel_launches_total",
	"emogi_kernel_warps_total",
	"emogi_warp_instructions_total",
	"emogi_hbm_bytes_total",
	"emogi_host_dram_bytes_total",
	"emogi_pcie_requests_total",
	"emogi_pcie_payload_bytes_total",
	"emogi_pcie_wire_bytes_total",
	"emogi_pcie_trace_dropped_total",
	"emogi_pcie_request_size_bytes_bucket",
	"emogi_pcie_request_size_bytes_sum",
	"emogi_pcie_request_size_bytes_count",
	"emogi_uvm_migrations_total",
	"emogi_uvm_page_hits_total",
	"emogi_uvm_faults_total",
	"emogi_uvm_evictions_total",
	"emogi_zc_refetches_total",
	"emogi_rounds_total",
	"emogi_runs_total",
	"emogi_copy_bytes_total",
}

// TestCollectorSerialParallelEquivalence asserts the exporter preserves
// PR-1's determinism guarantee: the same traversal on 1 worker and on 8
// workers yields identical metric values for every simulated quantity.
func TestCollectorSerialParallelEquivalence(t *testing.T) {
	g := testGraph(t)
	src := graph.PickSources(g, 1, 71)[0]

	metricsFor := func(workers int) map[string]string {
		col := NewCollector(nil, NewTracer())
		dev := testDevice(t, workers, col)
		dev.Monitor().EnableTrace(64) // small limit: drop accounting must match too
		for _, transport := range []core.Transport{core.ZeroCopy, core.UVM} {
			dg, err := core.Upload(dev, g, transport, 8)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := core.Run(dev, dg, core.AppSSSP, src, core.MergedAligned); err != nil {
				t.Fatal(err)
			}
		}
		all := parseSeries(t, render(t, col.Registry()))
		keep := make(map[string]string)
		for k, v := range all {
			for _, fam := range deterministicCounters {
				if k == fam || strings.HasPrefix(k, fam+"{") {
					keep[k] = v
					break
				}
			}
		}
		return keep
	}

	serial, parallel := metricsFor(1), metricsFor(8)
	if len(serial) == 0 {
		t.Fatalf("no deterministic series captured")
	}
	for k, v := range serial {
		if pv, ok := parallel[k]; !ok {
			t.Errorf("series %s missing from parallel run", k)
		} else if pv != v {
			t.Errorf("series %s differs: serial %s, parallel %s", k, v, pv)
		}
	}
	for k := range parallel {
		if _, ok := serial[k]; !ok {
			t.Errorf("series %s missing from serial run", k)
		}
	}
}
