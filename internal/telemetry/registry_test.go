package telemetry

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestRegistryCounterExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("emogi_kernel_launches_total", "Kernel launches completed.",
		Labels{"app": "BFS", "graph": "GK"}).Add(3)
	reg.Counter("emogi_kernel_launches_total", "ignored on reuse",
		Labels{"app": "SSSP", "graph": "GK"}).Inc()

	out := render(t, reg)
	for _, want := range []string{
		"# HELP emogi_kernel_launches_total Kernel launches completed.",
		"# TYPE emogi_kernel_launches_total counter",
		`emogi_kernel_launches_total{app="BFS",graph="GK"} 3`,
		`emogi_kernel_launches_total{app="SSSP",graph="GK"} 1`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryLabelCanonicalization(t *testing.T) {
	reg := NewRegistry()
	// Same label set in different construction order must address one series.
	reg.Counter("x_total", "h", Labels{"b": "2", "a": "1"}).Add(1)
	reg.Counter("x_total", "h", Labels{"a": "1", "b": "2"}).Add(1)
	out := render(t, reg)
	if !strings.Contains(out, `x_total{a="1",b="2"} 2`) {
		t.Errorf("labels not canonicalized:\n%s", out)
	}
}

func TestRegistryEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("esc_total", "line1\nline2 \\ back", Labels{"v": "a\"b\\c\nd"}).Inc()
	out := render(t, reg)
	if !strings.Contains(out, `# HELP esc_total line1\nline2 \\ back`) {
		t.Errorf("HELP not escaped:\n%s", out)
	}
	if !strings.Contains(out, `esc_total{v="a\"b\\c\nd"} 1`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
}

func TestRegistryGauge(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("emogi_util_ratio", "Utilization.", nil)
	g.Set(0.5)
	g.Set(0.25)
	out := render(t, reg)
	if !strings.Contains(out, "# TYPE emogi_util_ratio gauge\n") {
		t.Errorf("missing gauge TYPE:\n%s", out)
	}
	if !strings.Contains(out, "emogi_util_ratio 0.25\n") {
		t.Errorf("gauge must report last value:\n%s", out)
	}
}

func TestRegistryHistogram(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("emogi_req_size_bytes", "Sizes.", []float64{32, 64, 128}, Labels{"app": "toy"})
	h.ObserveN(32, 2)
	h.Observe(96)  // falls into le=128
	h.Observe(200) // falls into +Inf
	out := render(t, reg)
	for _, want := range []string{
		"# TYPE emogi_req_size_bytes histogram",
		`emogi_req_size_bytes_bucket{app="toy",le="32"} 2`,
		`emogi_req_size_bytes_bucket{app="toy",le="64"} 2`,
		`emogi_req_size_bytes_bucket{app="toy",le="128"} 3`,
		`emogi_req_size_bytes_bucket{app="toy",le="+Inf"} 4`,
		`emogi_req_size_bytes_sum{app="toy"} 360`,
		`emogi_req_size_bytes_count{app="toy"} 4`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("histogram exposition missing %q:\n%s", want, out)
		}
	}
	if h.Count() != 4 || h.Sum() != 360 {
		t.Errorf("histogram accessors: count=%d sum=%v", h.Count(), h.Sum())
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m_total", "h", nil)
	defer func() {
		if recover() == nil {
			t.Errorf("reusing a name with a different kind must panic")
		}
	}()
	reg.Gauge("m_total", "h", nil)
}

func TestRegistryConcurrentUse(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				reg.Counter("conc_total", "h", Labels{"w": fmt.Sprint(i % 2)}).Inc()
				reg.Histogram("conc_hist", "h", []float64{1}, nil).Observe(float64(j))
			}
		}(i)
	}
	wg.Wait()
	series := parseSeries(t, render(t, reg))
	total := mustUint(t, series[`conc_total{w="0"}`]) + mustUint(t, series[`conc_total{w="1"}`])
	if total != 800 {
		t.Errorf("concurrent counter total = %d, want 800", total)
	}
}

// TestExpositionFormatValid runs every rendered line through a strict
// line-level validator of the text exposition format.
func TestExpositionFormatValid(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total", "help a", Labels{"k": "v"}).Add(7)
	reg.Gauge("b_ratio", "help b", nil).Set(1.5)
	reg.Histogram("c_bytes", "help c", []float64{10, 20}, Labels{"x": "y"}).Observe(15)
	validateExposition(t, render(t, reg))
}

// --- shared test helpers ---

// render writes the registry to a string.
func render(t *testing.T, reg *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return b.String()
}

// parseSeries maps "name{labels}" to the rendered value string for every
// sample line of an exposition.
func parseSeries(t *testing.T, text string) map[string]string {
	t.Helper()
	out := make(map[string]string)
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndex(line, " ")
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		out[line[:sp]] = line[sp+1:]
	}
	return out
}

func mustUint(t *testing.T, s string) uint64 {
	t.Helper()
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		t.Fatalf("expected unsigned integer sample, got %q: %v", s, err)
	}
	return v
}

// validateExposition asserts the text parses as the Prometheus exposition
// format: HELP/TYPE comments with known types, sample lines shaped
// name{label="value",...} value, metric names matching the spec charset,
// every sample preceded by its family's TYPE line.
func validateExposition(t *testing.T, text string) {
	t.Helper()
	typed := make(map[string]string)
	sawSample := 0
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			if name, _, ok := strings.Cut(rest, " "); !ok || !validMetricName(name) {
				t.Errorf("bad HELP line %q", line)
			}
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || !validMetricName(name) {
				t.Errorf("bad TYPE line %q", line)
				continue
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Errorf("unknown TYPE %q in %q", typ, line)
			}
			typed[name] = typ
		case line == "":
			t.Errorf("blank line inside exposition")
		default:
			sawSample++
			sp := strings.LastIndex(line, " ")
			if sp < 0 {
				t.Fatalf("malformed sample line %q", line)
			}
			series, value := line[:sp], line[sp+1:]
			name := series
			if i := strings.IndexByte(series, '{'); i >= 0 {
				if !strings.HasSuffix(series, "}") {
					t.Errorf("unbalanced label braces in %q", line)
				}
				name = series[:i]
				validateLabels(t, series[i+1:len(series)-1], line)
			}
			if !validMetricName(name) {
				t.Errorf("invalid metric name in %q", line)
			}
			base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name,
				"_bucket"), "_sum"), "_count")
			if _, ok := typed[name]; !ok {
				if _, ok := typed[base]; !ok {
					t.Errorf("sample %q has no TYPE line", line)
				}
			}
			if value != "+Inf" && value != "-Inf" && value != "NaN" {
				if _, err := strconv.ParseFloat(value, 64); err != nil {
					t.Errorf("unparseable sample value %q in %q", value, line)
				}
			}
		}
	}
	if sawSample == 0 {
		t.Errorf("exposition contains no samples")
	}
}

// validateLabels checks the k="v" comma-joined body of a label set.
func validateLabels(t *testing.T, body, line string) {
	t.Helper()
	rest := body
	for rest != "" {
		eq := strings.Index(rest, "=\"")
		if eq <= 0 || !validLabelName(rest[:eq]) {
			t.Errorf("bad label name in %q", line)
			return
		}
		rest = rest[eq+2:]
		// Find closing unescaped quote.
		end := -1
		for i := 0; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			t.Errorf("unterminated label value in %q", line)
			return
		}
		rest = rest[end+1:]
		if rest == "" {
			return
		}
		if !strings.HasPrefix(rest, ",") {
			t.Errorf("missing label separator in %q", line)
			return
		}
		rest = rest[1:]
	}
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}
