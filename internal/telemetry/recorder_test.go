package telemetry

import (
	"fmt"
	"sync"
	"testing"
)

func rec(id string, wallNS int64) RequestRecord {
	return RequestRecord{TraceID: id, WallNS: wallNS}
}

// TestRecorderRingEviction: the ring keeps the newest capacity records,
// Snapshot returns them newest-first, and Total keeps counting evicted
// ones.
func TestRecorderRingEviction(t *testing.T) {
	r := NewRecorder(3)
	if r.Capacity() != 3 {
		t.Fatalf("Capacity = %d, want 3", r.Capacity())
	}
	for i := 1; i <= 5; i++ {
		r.Record(rec(fmt.Sprintf("r%d", i), int64(i)))
	}
	if r.Len() != 3 {
		t.Errorf("Len = %d, want 3", r.Len())
	}
	if r.Total() != 5 {
		t.Errorf("Total = %d, want 5", r.Total())
	}
	got := r.Snapshot()
	want := []string{"r5", "r4", "r3"} // r1, r2 evicted; newest first
	if len(got) != len(want) {
		t.Fatalf("Snapshot returned %d records, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].TraceID != w {
			t.Errorf("Snapshot[%d] = %q, want %q", i, got[i].TraceID, w)
		}
	}
}

// TestRecorderSlowest: Slowest orders by descending wall time, truncates
// to k, and breaks ties newest-first.
func TestRecorderSlowest(t *testing.T) {
	r := NewRecorder(8)
	r.Record(rec("fast", 10))
	r.Record(rec("slow", 500))
	r.Record(rec("tie-old", 100))
	r.Record(rec("tie-new", 100))
	r.Record(rec("mid", 200))

	got := r.Slowest(3)
	if len(got) != 3 {
		t.Fatalf("Slowest(3) returned %d records", len(got))
	}
	want := []string{"slow", "mid", "tie-new"} // tie-new beats tie-old on the tie
	for i, w := range want {
		if got[i].TraceID != w {
			t.Errorf("Slowest[%d] = %q (wall %d), want %q", i, got[i].TraceID, got[i].WallNS, w)
		}
	}
	if all := r.Slowest(0); len(all) != 5 {
		t.Errorf("Slowest(0) returned %d records, want all 5", len(all))
	}
}

// TestRecorderNilInert: every method on a nil recorder is a safe no-op,
// so the serving layer can wire it unconditionally.
func TestRecorderNilInert(t *testing.T) {
	var r *Recorder
	r.Record(rec("x", 1))
	if r.Len() != 0 || r.Total() != 0 || r.Capacity() != 0 {
		t.Error("nil recorder reports non-empty state")
	}
	if r.Snapshot() != nil || r.Slowest(5) != nil {
		t.Error("nil recorder returned records")
	}
}

// TestRecorderConcurrent hammers the recorder from many goroutines; run
// with -race this proves the ring's locking.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Record(rec(fmt.Sprintf("g%d-%d", g, i), int64(i)))
				if i%10 == 0 {
					r.Snapshot()
					r.Slowest(4)
					r.Len()
				}
			}
		}(g)
	}
	wg.Wait()
	if r.Total() != 8*200 {
		t.Errorf("Total = %d, want %d", r.Total(), 8*200)
	}
	if r.Len() != 16 {
		t.Errorf("Len = %d, want capacity 16", r.Len())
	}
}
