package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// Server exposes a registry over HTTP the way a production exporter does:
// GET /metrics returns the Prometheus text exposition, GET /healthz a
// health probe, GET /debug/requests the flight recorder. It binds eagerly
// (so a bad address fails fast) and serves in a background goroutine.
type Server struct {
	reg      *Registry
	listener net.Listener
	srv      *http.Server
}

// contentTypeText is the text exposition format version served on /metrics.
const contentTypeText = "text/plain; version=0.0.4; charset=utf-8"

// HandlerOptions configures NewHandler. Only Registry is required; nil
// Recorder/Health leave the corresponding endpoints in their degenerate
// modes (empty recorder list, always-ok health).
type HandlerOptions struct {
	// Registry backs /metrics.
	Registry *Registry
	// Recorder backs /debug/requests and /debug/requests/slowest; nil
	// serves empty lists.
	Recorder *Recorder
	// Health backs /healthz; nil preserves the legacy always-200 probe.
	Health *Health
	// Pprof mounts net/http/pprof under /debug/pprof/ when true. Off by
	// default: profiles expose internals and cost CPU to capture.
	Pprof bool
}

// slowestDefaultLimit is the record count /debug/requests/slowest returns
// when no limit parameter is given.
const slowestDefaultLimit = 10

// writeJSON marshals v with indentation (these are operator-facing debug
// endpoints, read by humans and curl | jq alike).
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// parseLimit reads an optional positive ?limit= query parameter, returning
// def when absent and an error for junk.
func parseLimit(r *http.Request, def int) (int, error) {
	raw := r.URL.Query().Get("limit")
	if raw == "" {
		return def, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("limit must be a non-negative integer, got %q", raw)
	}
	return n, nil
}

// requestsPayload is the JSON envelope of the /debug/requests endpoints.
type requestsPayload struct {
	// Total counts every record ever added, including evicted ones;
	// Capacity is the ring size.
	Total    uint64          `json:"total"`
	Capacity int             `json:"capacity"`
	Requests []RequestRecord `json:"requests"`
}

// NewHandler returns an http.Handler serving the observability surface:
//
//	GET /metrics                  Prometheus text exposition
//	GET /healthz                  health probe (503 draining/unhealthy)
//	GET /debug/requests           flight recorder, newest-first
//	GET /debug/requests/slowest   flight recorder, slowest-first
//	GET /debug/pprof/...          net/http/pprof (opts.Pprof only)
//
// Unknown routes 404 (the mux registers exact paths, no catch-all).
func NewHandler(opts HandlerOptions) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", contentTypeText)
		_ = opts.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		rep := opts.Health.Report() // nil-safe: ok/serving
		status := http.StatusOK
		if !rep.Serving {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, rep)
	})
	mux.HandleFunc("GET /debug/requests", func(w http.ResponseWriter, r *http.Request) {
		limit, err := parseLimit(r, 0)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		recs := opts.Recorder.Snapshot()
		if limit > 0 && len(recs) > limit {
			recs = recs[:limit]
		}
		writeJSON(w, http.StatusOK, requestsPayload{
			Total:    opts.Recorder.Total(),
			Capacity: opts.Recorder.Capacity(),
			Requests: recs,
		})
	})
	mux.HandleFunc("GET /debug/requests/slowest", func(w http.ResponseWriter, r *http.Request) {
		limit, err := parseLimit(r, slowestDefaultLimit)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, http.StatusOK, requestsPayload{
			Total:    opts.Recorder.Total(),
			Capacity: opts.Recorder.Capacity(),
			Requests: opts.Recorder.Slowest(limit),
		})
	})
	if opts.Pprof {
		// Explicit registrations instead of the package's DefaultServeMux
		// side effects, so pprof stays off this mux unless asked for.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// Handler returns an http.Handler serving just /metrics and /healthz —
// the pre-flight-recorder surface, kept for embedders that only have a
// registry.
func Handler(reg *Registry) http.Handler {
	return NewHandler(HandlerOptions{Registry: reg})
}

// ListenAndServe binds addr (e.g. ":9400") and serves the registry until
// Close. It returns once the listener is bound, so a scrape immediately
// after return succeeds.
func ListenAndServe(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: binding metrics listener: %w", err)
	}
	s := &Server{
		reg:      reg,
		listener: ln,
		srv: &http.Server{
			Handler:           Handler(reg),
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go func() {
		// ErrServerClosed after Close is the normal shutdown path; any
		// other error means the exporter died, which the sim run should
		// not die with.
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.listener.Addr().String() }

// URL returns the scrape URL for the metrics endpoint.
func (s *Server) URL() string {
	host, port, err := net.SplitHostPort(s.Addr())
	if err != nil {
		return "http://" + s.Addr() + "/metrics"
	}
	if host == "" || host == "::" || host == "0.0.0.0" {
		host = "localhost"
	}
	return fmt.Sprintf("http://%s/metrics", net.JoinHostPort(host, port))
}

// Close stops serving and releases the listener.
func (s *Server) Close() error { return s.srv.Close() }
