package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"time"
)

// Server exposes a registry over HTTP the way a production exporter does:
// GET /metrics returns the Prometheus text exposition, GET /healthz a
// liveness probe. It binds eagerly (so a bad address fails fast) and
// serves in a background goroutine.
type Server struct {
	reg      *Registry
	listener net.Listener
	srv      *http.Server
}

// contentTypeText is the text exposition format version served on /metrics.
const contentTypeText = "text/plain; version=0.0.4; charset=utf-8"

// Handler returns an http.Handler serving the registry: /metrics and
// /healthz. Useful for embedding into an existing mux.
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", contentTypeText)
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	return mux
}

// ListenAndServe binds addr (e.g. ":9400") and serves the registry until
// Close. It returns once the listener is bound, so a scrape immediately
// after return succeeds.
func ListenAndServe(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: binding metrics listener: %w", err)
	}
	s := &Server{
		reg:      reg,
		listener: ln,
		srv: &http.Server{
			Handler:           Handler(reg),
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go func() {
		// ErrServerClosed after Close is the normal shutdown path; any
		// other error means the exporter died, which the sim run should
		// not die with.
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.listener.Addr().String() }

// URL returns the scrape URL for the metrics endpoint.
func (s *Server) URL() string {
	host, port, err := net.SplitHostPort(s.Addr())
	if err != nil {
		return "http://" + s.Addr() + "/metrics"
	}
	if host == "" || host == "::" || host == "0.0.0.0" {
		host = "localhost"
	}
	return fmt.Sprintf("http://%s/metrics", net.JoinHostPort(host, port))
}

// Close stops serving and releases the listener.
func (s *Server) Close() error { return s.srv.Close() }
