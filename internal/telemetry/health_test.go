package telemetry

import (
	"strings"
	"testing"
)

// TestHealthStateTransitions walks one device through the derivation
// rules: healthy → degraded on absorbed faults or UVM fallback →
// unhealthy on consecutive failures → healthy again once the window
// slides clean.
func TestHealthStateTransitions(t *testing.T) {
	h := NewHealth(nil)
	h.RegisterDevice("gpu0")

	rep := h.Report()
	if rep.Status != "ok" || !rep.Serving || len(rep.Devices) != 1 {
		t.Fatalf("fresh report = %+v, want ok/serving with one device", rep)
	}
	if rep.Devices[0].State != "healthy" {
		t.Fatalf("fresh device state = %q", rep.Devices[0].State)
	}

	// A clean run keeps it healthy.
	h.ObserveRun("gpu0", RunObservation{})
	if st := h.Report().Devices[0].State; st != "healthy" {
		t.Errorf("after clean run: state = %q, want healthy", st)
	}

	// Absorbed faults degrade without failing.
	h.ObserveRun("gpu0", RunObservation{Faults: 3})
	rep = h.Report()
	if rep.Devices[0].State != "degraded" {
		t.Errorf("after absorbed faults: state = %q, want degraded", rep.Devices[0].State)
	}
	if rep.Status != "degraded" || !rep.Serving {
		t.Errorf("degraded instance: status=%q serving=%v, want degraded/true", rep.Status, rep.Serving)
	}
	if rep.Devices[0].WindowFaults != 3 {
		t.Errorf("WindowFaults = %d, want 3", rep.Devices[0].WindowFaults)
	}

	// A UVM fallback also reads as degraded, with the fallback reason.
	h.ObserveRun("gpu0", RunObservation{Degraded: true})
	rep = h.Report()
	if rep.Devices[0].State != "degraded" || !strings.Contains(rep.Devices[0].Reason, "UVM") {
		t.Errorf("after fallback: state=%q reason=%q", rep.Devices[0].State, rep.Devices[0].Reason)
	}

	// Three consecutive transient failures flip it unhealthy and stop
	// serving.
	for i := 0; i < 3; i++ {
		h.ObserveRun("gpu0", RunObservation{TransientFailure: true})
	}
	rep = h.Report()
	if rep.Devices[0].State != "unhealthy" {
		t.Fatalf("after 3 consecutive failures: state = %q, want unhealthy", rep.Devices[0].State)
	}
	if rep.Status != "unhealthy" || rep.Serving {
		t.Errorf("unhealthy instance: status=%q serving=%v, want unhealthy/false", rep.Status, rep.Serving)
	}

	// Enough clean runs slide the window clear and recover the device.
	for i := 0; i < healthWindow; i++ {
		h.ObserveRun("gpu0", RunObservation{})
	}
	rep = h.Report()
	if rep.Devices[0].State != "healthy" {
		t.Errorf("after a clean window: state = %q, want healthy", rep.Devices[0].State)
	}
	if rep.Status != "ok" || !rep.Serving {
		t.Errorf("recovered instance: status=%q serving=%v", rep.Status, rep.Serving)
	}
}

// TestHealthFailRatio: non-consecutive failures still flip the device
// unhealthy once they reach half the window.
func TestHealthFailRatio(t *testing.T) {
	h := NewHealth(nil)
	// Alternate fail/clean: never 3 consecutive, but the ratio reaches
	// 50% with >= unhealthyMinRuns in the window.
	for i := 0; i < 6; i++ {
		h.ObserveRun("gpu0", RunObservation{TransientFailure: i%2 == 0})
	}
	rep := h.Report()
	if rep.Devices[0].State != "unhealthy" {
		t.Errorf("state = %q (%d/%d failures), want unhealthy via fail ratio",
			rep.Devices[0].State, rep.Devices[0].WindowFailures, rep.Devices[0].WindowRuns)
	}
}

// TestHealthDraining: the drain flag overrides everything — status
// "draining", serving false — and the gauge tracks it.
func TestHealthDraining(t *testing.T) {
	reg := NewRegistry()
	h := NewHealth(reg)
	h.RegisterDevice("gpu0")

	h.SetDraining(true)
	if !h.Draining() {
		t.Fatal("Draining() = false after SetDraining(true)")
	}
	rep := h.Report()
	if rep.Status != "draining" || rep.Serving || !rep.Draining {
		t.Errorf("draining report = %+v", rep)
	}
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "emogi_serve_draining 1") {
		t.Errorf("exposition missing draining gauge:\n%s", sb.String())
	}
	h.SetDraining(false)
	if h.Draining() || !h.Report().Serving {
		t.Error("drain flag did not clear")
	}
}

// TestHealthGaugeExport: device states export as
// emogi_device_health_state{device} with the numeric classification.
func TestHealthGaugeExport(t *testing.T) {
	reg := NewRegistry()
	h := NewHealth(reg)
	h.ObserveRun("gpu0", RunObservation{Degraded: true})

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `emogi_device_health_state{device="gpu0"} 1`) {
		t.Errorf("exposition missing device state gauge:\n%s", sb.String())
	}
}

// TestHealthNilInert: a nil *Health accepts every call and reports a
// serving instance.
func TestHealthNilInert(t *testing.T) {
	var h *Health
	h.RegisterDevice("gpu0")
	h.ObserveRun("gpu0", RunObservation{TransientFailure: true})
	h.SetDraining(true)
	if h.Draining() {
		t.Error("nil health reports draining")
	}
	rep := h.Report()
	if rep.Status != "ok" || !rep.Serving {
		t.Errorf("nil health report = %+v, want ok/serving", rep)
	}
}
