package baseline

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/graph"
)

// HALORun executes one application with the HALO-style configuration [21]:
// the CSR is first reordered with a locality-enhancing permutation (HALO's
// contribution), then traversed through UVM exactly like the optimized UVM
// baseline. Reordering improves the page locality of frontier neighbor
// lists, which is where HALO's advantage over plain UVM comes from.
//
// Results are mapped back to the original vertex numbering, so they are
// directly comparable (and validatable) against every other system.
//
// The reordering itself is offline preprocessing and is not charged to the
// run, matching how HALO's published numbers are reported.
func HALORun(dev *gpu.Device, g *graph.CSR, app core.App, src int) (*core.Result, error) {
	perm := graph.LocalityOrder(g)
	rg := graph.Reorder(g, perm)

	dg, err := core.Upload(dev, rg, core.UVM, 8)
	if err != nil {
		return nil, fmt.Errorf("baseline: HALO upload: %w", err)
	}
	defer dg.Free(dev)

	rsrc := src
	if app != core.AppCC {
		if src < 0 || src >= g.NumVertices() {
			return nil, fmt.Errorf("baseline: source %d out of range", src)
		}
		rsrc = int(perm[src])
	}
	res, err := core.Run(dev, dg, app, rsrc, core.Merged)
	if err != nil {
		return nil, err
	}

	// Map the result back to original IDs: position remap for all apps,
	// plus value remap for CC (labels are vertex IDs in the new space).
	n := g.NumVertices()
	order := make([]uint32, n) // order[newID] = oldID
	for old, nw := range perm {
		order[nw] = uint32(old)
	}
	remapped := make([]uint32, n)
	for old := 0; old < n; old++ {
		v := res.Values[perm[old]]
		if app == core.AppCC && v != graph.InfDist {
			// The min-label in the reordered space is the vertex with the
			// smallest *new* ID in the component; translate to the
			// smallest old ID by re-canonicalizing below.
			v = order[v]
		}
		remapped[old] = v
	}
	if app == core.AppCC {
		remapped = canonicalizeLabels(remapped)
	}
	res.Values = remapped
	if app != core.AppCC {
		res.Source = src
	}
	res.App = app.String()
	return res, nil
}

// canonicalizeLabels rewrites component labels so each component is
// labeled by its minimum member ID, making labels comparable with
// graph.RefCC regardless of the intermediate numbering.
func canonicalizeLabels(labels []uint32) []uint32 {
	minOf := make(map[uint32]uint32)
	for v, l := range labels {
		if cur, ok := minOf[l]; !ok || uint32(v) < cur {
			minOf[l] = uint32(v)
		}
	}
	out := make([]uint32, len(labels))
	for v, l := range labels {
		out[v] = minOf[l]
	}
	return out
}
