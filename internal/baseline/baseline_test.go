package baseline

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/graph"
	"repro/internal/memsys"
	"repro/internal/pcie"
)

func testDevice(memBytes int64) *gpu.Device {
	return gpu.NewDevice(gpu.Config{
		Name:     "test-v100",
		MemBytes: memBytes,
		HBM:      memsys.HBM2V100(),
		HostDRAM: memsys.DDR4Quad(),
		Link:     pcie.Gen3x16(),
	})
}

func weighted(g *graph.CSR) *graph.CSR {
	g.InitWeights(7, 8, 72)
	return g
}

func TestSubwayBFSCorrect(t *testing.T) {
	t.Parallel()
	g := weighted(graph.RMAT("gk", 512, 10, 0.57, 0.19, 0.19, true, 1))
	dev := testDevice(0)
	src := graph.PickSources(g, 1, 3)[0]
	res, err := SubwayRun(dev, g, core.AppBFS, src, DefaultSubwayConfig())
	if err != nil {
		t.Fatalf("SubwayRun: %v", err)
	}
	if err := core.ValidateBFS(g, src, res.Values); err != nil {
		t.Errorf("Subway BFS wrong: %v", err)
	}
	if res.Iterations == 0 || res.Elapsed <= 0 {
		t.Errorf("degenerate result: %+v", res)
	}
}

func TestSubwaySSSPCorrect(t *testing.T) {
	t.Parallel()
	g := weighted(graph.Urand("gu", 400, 10, 2))
	dev := testDevice(0)
	src := graph.PickSources(g, 1, 5)[0]
	res, err := SubwayRun(dev, g, core.AppSSSP, src, DefaultSubwayConfig())
	if err != nil {
		t.Fatalf("SubwayRun: %v", err)
	}
	if err := core.ValidateSSSP(g, src, res.Values); err != nil {
		t.Errorf("Subway SSSP wrong: %v", err)
	}
}

func TestSubwayCCCorrect(t *testing.T) {
	t.Parallel()
	g := weighted(graph.Social("fs", 512, 10, 4))
	dev := testDevice(0)
	res, err := SubwayRun(dev, g, core.AppCC, 0, DefaultSubwayConfig())
	if err != nil {
		t.Fatalf("SubwayRun: %v", err)
	}
	if err := core.ValidateCC(g, res.Values); err != nil {
		t.Errorf("Subway CC wrong: %v", err)
	}
	if res.Source != -1 {
		t.Errorf("CC result should have no source")
	}
}

func TestSubwayEdgeLimit(t *testing.T) {
	t.Parallel()
	g := weighted(graph.Dense("ml", 200, 60, 24, 3))
	dev := testDevice(0)
	cfg := DefaultSubwayConfig()
	cfg.MaxEdges = g.NumEdges() - 1
	_, err := SubwayRun(dev, g, core.AppBFS, 0, cfg)
	if !errors.Is(err, ErrSubwayUnsupported) {
		t.Errorf("expected ErrSubwayUnsupported, got %v", err)
	}
}

func TestSubwayOOMWithoutPartitioning(t *testing.T) {
	t.Parallel()
	// A GPU too small for the first full frontier with partitioning
	// disabled: Subway must fail with OOM, reproducing the paper's GU
	// observation ("unidentified CUDA out-of-memory errors", §5.6).
	g := weighted(graph.Urand("gu", 2000, 24, 1))
	dev := testDevice(96 * 1024)
	src := graph.PickSources(g, 1, 1)[0]
	cfg := DefaultSubwayConfig()
	cfg.Partition = false
	_, err := SubwayRun(dev, g, core.AppCC, src, cfg)
	if !errors.Is(err, ErrSubwayOOM) {
		t.Errorf("expected ErrSubwayOOM, got %v", err)
	}
}

func TestSubwayPartitionsOversizedFrontier(t *testing.T) {
	t.Parallel()
	// The same tiny GPU with partitioning processes the frontier in
	// chunks and still produces correct results.
	g := weighted(graph.Urand("gu", 2000, 24, 1))
	dev := testDevice(96 * 1024)
	res, err := SubwayRun(dev, g, core.AppCC, 0, DefaultSubwayConfig())
	if err != nil {
		t.Fatalf("partitioned Subway failed: %v", err)
	}
	if err := core.ValidateCC(g, res.Values); err != nil {
		t.Errorf("partitioned Subway CC wrong: %v", err)
	}
	// Sanity: an unconstrained run must not be slower than the chunked one.
	devBig := testDevice(0)
	resBig, err := SubwayRun(devBig, g, core.AppCC, 0, DefaultSubwayConfig())
	if err != nil {
		t.Fatal(err)
	}
	if resBig.Elapsed > res.Elapsed {
		t.Errorf("chunking should not be faster: %v vs %v", res.Elapsed, resBig.Elapsed)
	}
}

func TestSubwayHubExceedsGPU(t *testing.T) {
	t.Parallel()
	// A single neighbor list bigger than free GPU memory cannot be staged
	// even with partitioning: hard OOM. Build a star whose hub list alone
	// (20000 x 4B staging cost) exceeds the GPU memory left after the
	// 80KB value array.
	const n = 20000
	edges := make([]graph.Edge, 0, n-1)
	for v := uint32(1); v < n; v++ {
		edges = append(edges, graph.Edge{Src: 0, Dst: v})
	}
	g := weighted(graph.FromEdges("star", n, edges, false))
	dev := testDevice(128 * 1024)
	_, err := SubwayRun(dev, g, core.AppCC, 0, DefaultSubwayConfig())
	if !errors.Is(err, ErrSubwayOOM) {
		t.Errorf("expected ErrSubwayOOM for unsplittable hub, got %v", err)
	}
}

func TestSubwayConfigValidation(t *testing.T) {
	t.Parallel()
	g := weighted(graph.Urand("gu", 200, 8, 1))
	dev := testDevice(0)
	cfg := DefaultSubwayConfig()
	cfg.EdgeBytes = 8
	if _, err := SubwayRun(dev, g, core.AppBFS, 0, cfg); err == nil {
		t.Errorf("8-byte Subway accepted; the framework only supports 4")
	}
	if _, err := SubwayRun(dev, g, core.AppBFS, -1, DefaultSubwayConfig()); err == nil {
		t.Errorf("bad source accepted")
	}
	unweighted := graph.Urand("u", 100, 6, 2)
	if _, err := SubwayRun(dev, unweighted, core.AppSSSP, 0, DefaultSubwayConfig()); err == nil {
		t.Errorf("unweighted SSSP accepted")
	}
	directed := graph.Web("w", 200, 8, 3)
	if _, err := SubwayRun(dev, directed, core.AppCC, 0, DefaultSubwayConfig()); err == nil {
		t.Errorf("directed CC accepted")
	}
	// Zero-value config gets defaults.
	res, err := SubwayRun(dev, g, core.AppBFS, graph.PickSources(g, 1, 1)[0], SubwayConfig{})
	if err != nil {
		t.Fatalf("zero config: %v", err)
	}
	if err := core.ValidateBFS(g, res.Source, res.Values); err != nil {
		t.Error(err)
	}
}

func TestSubwaySyncSlowerOrEqualAsync(t *testing.T) {
	t.Parallel()
	g := weighted(graph.RMAT("gk", 1024, 12, 0.57, 0.19, 0.19, true, 1))
	src := graph.PickSources(g, 1, 3)[0]
	cfgA := DefaultSubwayConfig()
	devA := testDevice(0)
	resA, err := SubwayRun(devA, g, core.AppBFS, src, cfgA)
	if err != nil {
		t.Fatal(err)
	}
	cfgS := DefaultSubwayConfig()
	cfgS.Async = false
	devS := testDevice(0)
	resS, err := SubwayRun(devS, g, core.AppBFS, src, cfgS)
	if err != nil {
		t.Fatal(err)
	}
	if resS.Elapsed < resA.Elapsed {
		t.Errorf("sync Subway (%v) should not beat async (%v)", resS.Elapsed, resA.Elapsed)
	}
}

func TestHALOBFSCorrect(t *testing.T) {
	t.Parallel()
	g := weighted(graph.RMAT("gk", 512, 10, 0.57, 0.19, 0.19, true, 1))
	dev := testDevice(0)
	src := graph.PickSources(g, 1, 3)[0]
	res, err := HALORun(dev, g, core.AppBFS, src)
	if err != nil {
		t.Fatalf("HALORun: %v", err)
	}
	if err := core.ValidateBFS(g, src, res.Values); err != nil {
		t.Errorf("HALO BFS wrong after remap: %v", err)
	}
	if res.Source != src {
		t.Errorf("source not mapped back: %d", res.Source)
	}
}

func TestHALOSSSPCorrect(t *testing.T) {
	t.Parallel()
	g := weighted(graph.Urand("gu", 300, 10, 2))
	dev := testDevice(0)
	src := graph.PickSources(g, 1, 5)[0]
	res, err := HALORun(dev, g, core.AppSSSP, src)
	if err != nil {
		t.Fatalf("HALORun: %v", err)
	}
	if err := core.ValidateSSSP(g, src, res.Values); err != nil {
		t.Errorf("HALO SSSP wrong: %v", err)
	}
}

func TestHALOCCCorrect(t *testing.T) {
	t.Parallel()
	g := weighted(graph.Social("fs", 512, 10, 4))
	dev := testDevice(0)
	res, err := HALORun(dev, g, core.AppCC, 0)
	if err != nil {
		t.Fatalf("HALORun: %v", err)
	}
	if err := core.ValidateCC(g, res.Values); err != nil {
		t.Errorf("HALO CC wrong after label canonicalization: %v", err)
	}
}

func TestHALOBadSource(t *testing.T) {
	t.Parallel()
	g := weighted(graph.Urand("gu", 100, 8, 1))
	dev := testDevice(0)
	if _, err := HALORun(dev, g, core.AppBFS, -2); err == nil {
		t.Errorf("bad source accepted")
	}
}

// TestHALOReducesMigrationsUnderPressure: with GPU memory far smaller than
// the edge list, the reordered graph should migrate fewer UVM pages than
// the original ordering on a web-like graph — HALO's entire premise.
func TestHALOReducesMigrationsUnderPressure(t *testing.T) {
	t.Parallel()
	g := weighted(graph.RMAT("gk", 4096, 16, 0.57, 0.19, 0.19, true, 11))
	src := graph.PickSources(g, 1, 3)[0]
	// Leave only ~20 pages of UVM cache after the ~50KB of explicit
	// allocations, far below the ~128-page edge list: every iteration
	// must re-fault the pages its frontier touches.
	mem := int64(128 * 1024)

	devPlain := testDevice(mem)
	dgPlain, err := core.Upload(devPlain, g, core.UVM, 8)
	if err != nil {
		t.Fatal(err)
	}
	resPlain, err := core.BFS(devPlain, dgPlain, src, core.Merged)
	if err != nil {
		t.Fatal(err)
	}

	devHalo := testDevice(mem)
	resHalo, err := HALORun(devHalo, g, core.AppBFS, src)
	if err != nil {
		t.Fatal(err)
	}
	if resHalo.Stats.UVMMigrations >= resPlain.Stats.UVMMigrations {
		t.Errorf("HALO migrations (%d) should be below plain UVM (%d)",
			resHalo.Stats.UVMMigrations, resPlain.Stats.UVMMigrations)
	}
}

func TestCanonicalizeLabels(t *testing.T) {
	t.Parallel()
	in := []uint32{7, 7, 3, 3, 9}
	got := canonicalizeLabels(in)
	want := []uint32{0, 0, 2, 2, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("canonicalize[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}
