// Package baseline implements the systems the paper compares EMOGI against
// in §5.6 / Table 3: a Subway-style partition-and-transfer engine and a
// HALO-style locality-reordered UVM configuration. (The plain "optimized
// UVM" baseline of §5.1.2(a) is simply core with Transport=UVM and needs
// no extra code.)
package baseline

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/graph"
	"repro/internal/memsys"
)

// SubwayConfig models the published Subway design [45]: per-iteration
// GPU-accelerated extraction of the active subgraph, bulk transfer of only
// those edges, and an in-GPU-memory kernel.
type SubwayConfig struct {
	// EdgeBytes is fixed at 4: "Subway only supports 4-byte data types"
	// (Table 3 caption).
	EdgeBytes int

	// MaxEdges mirrors the framework's 2^32 edge limit ("it cannot execute
	// on the ML graph as the framework currently supports a maximum of
	// 2^32 edges", §5.6), scaled 1:1000 with the datasets.
	MaxEdges int64

	// GenBytesPerSec is the throughput of subgraph generation: the
	// host+GPU pipeline that compacts active neighbor lists each
	// iteration. Calibrated so the Table 3 speedup band (EMOGI 2.0-4.7x
	// over Subway) is reproduced.
	GenBytesPerSec float64

	// Partition makes oversized active subgraphs process in GPU-sized
	// chunks, as the real Subway does. With Partition disabled, a frontier
	// whose subgraph exceeds free GPU memory fails with ErrSubwayOOM —
	// reproducing the paper's observed GU failure ("unidentified CUDA
	// out-of-memory errors", §5.6).
	Partition bool

	// GenFixed is the fixed per-iteration preprocessing latency.
	GenFixed time.Duration

	// Async overlaps the subgraph transfer with kernel execution
	// (Subway-async, the stronger variant the paper compares against).
	Async bool
}

// DefaultSubwayConfig returns the calibrated Subway-async configuration.
func DefaultSubwayConfig() SubwayConfig {
	return SubwayConfig{
		EdgeBytes:      4,
		MaxEdges:       (1 << 32) / 1000,
		GenBytesPerSec: 6e9,
		GenFixed:       60 * time.Microsecond,
		Async:          true,
		Partition:      true,
	}
}

// ErrSubwayUnsupported is returned when the input graph exceeds Subway's
// edge-count limit (the paper's ML case).
var ErrSubwayUnsupported = errors.New("baseline: graph exceeds Subway's 2^32-edge limit")

// ErrSubwayOOM is returned when an iteration's active subgraph does not
// fit in GPU memory (the paper's GU case: "fails to execute on the GU
// graph due to unidentified CUDA out-of-memory errors").
var ErrSubwayOOM = errors.New("baseline: active subgraph exceeds GPU memory")

// SubwayRun executes one application with the Subway-style engine and
// returns a core.Result comparable with EMOGI's. src is ignored for CC.
func SubwayRun(dev *gpu.Device, g *graph.CSR, app core.App, src int, cfg SubwayConfig) (*core.Result, error) {
	if cfg.EdgeBytes == 0 {
		cfg = DefaultSubwayConfig()
	}
	if cfg.EdgeBytes != 4 {
		return nil, fmt.Errorf("baseline: Subway only supports 4-byte edge elements, got %d", cfg.EdgeBytes)
	}
	if cfg.MaxEdges > 0 && g.NumEdges() > cfg.MaxEdges {
		return nil, fmt.Errorf("%w: %d edges > limit %d", ErrSubwayUnsupported, g.NumEdges(), cfg.MaxEdges)
	}
	if app == core.AppCC && g.Directed {
		return nil, fmt.Errorf("baseline: CC requires an undirected graph")
	}
	if app == core.AppSSSP && g.Weights == nil {
		return nil, fmt.Errorf("baseline: SSSP requires a weighted graph")
	}
	n := g.NumVertices()
	if app != core.AppCC && (src < 0 || src >= n) {
		return nil, fmt.Errorf("baseline: source %d out of range", src)
	}

	clock0 := dev.Clock()
	stats0 := dev.Total()
	arena := dev.Arena()

	// Persistent device state: the value array lives in GPU memory for the
	// whole run, like Subway's global value array.
	values, err := arena.Alloc("subway.values", memsys.SpaceGPU, int64(n)*4)
	if err != nil {
		return nil, fmt.Errorf("baseline: allocating value array: %w", err)
	}
	defer arena.Free(values)

	// Host-side state mirrors: activeness is computed on device in real
	// Subway; the simulator tracks it in lockstep and charges the
	// generation pipeline below.
	active := make([]bool, n)
	switch app {
	case core.AppCC:
		for v := 0; v < n; v++ {
			values.PutU32(int64(v), uint32(v))
			active[v] = true
		}
	default:
		for v := 0; v < n; v++ {
			values.PutU32(int64(v), graph.InfDist)
		}
		values.PutU32(int64(src), 0)
		active[src] = true
	}
	dev.CopyToDevice(int64(n) * 4)

	iterations := 0
	for {
		sub := graph.ExtractSubgraph(g, active)
		if sub.NumActive() == 0 {
			break
		}
		transfer := sub.TransferBytes(cfg.EdgeBytes)

		// Charge subgraph generation: a scan proportional to the bytes
		// compacted plus a fixed pipeline latency.
		genTime := cfg.GenFixed +
			time.Duration(float64(transfer)/cfg.GenBytesPerSec*float64(time.Second))
		dev.HostCompute(genTime)

		// The next frontier accumulates across all chunks of this
		// iteration.
		for i := range active {
			active[i] = false
		}

		// Partition the subgraph into chunks that fit free GPU memory
		// (real Subway's partitioned processing); without Partition an
		// oversized frontier is an OOM, the paper's GU failure mode.
		needW := app == core.AppSSSP
		budget := arena.GPUFree()
		lo := 0
		for lo < sub.NumActive() {
			hi := lo
			var bytes int64
			for hi < sub.NumActive() {
				deg := sub.Offsets[hi+1] - sub.Offsets[hi]
				cost := 12 + deg*int64(cfg.EdgeBytes) // id + offset + edges
				if needW {
					cost += deg * 4
				}
				if hi > lo && budget >= 0 && bytes+cost > budget-int64(memsys.PageBytes) {
					break
				}
				bytes += cost
				hi++
			}
			if hi == lo {
				return nil, fmt.Errorf("%w: single neighbor list exceeds free GPU memory", ErrSubwayOOM)
			}
			if !cfg.Partition && hi < sub.NumActive() {
				return nil, fmt.Errorf("%w: %d-byte active subgraph with partitioning disabled",
					ErrSubwayOOM, transfer)
			}
			if err := stageAndRunChunk(dev, cfg, sub, app, lo, hi, values, active); err != nil {
				return nil, err
			}
			lo = hi
		}
		iterations++
	}

	dev.CopyToHost(int64(n) * 4)
	out := make([]uint32, n)
	for v := 0; v < n; v++ {
		out[v] = values.U32(int64(v))
	}
	resSrc := src
	if app == core.AppCC {
		resSrc = -1
	}
	return &core.Result{
		App:        app.String(),
		Variant:    core.Merged,
		Transport:  core.ZeroCopy, // not meaningful for Subway; edges move in bulk
		Source:     resSrc,
		Values:     out,
		Iterations: iterations,
		Elapsed:    dev.Clock() - clock0,
		Stats:      dev.Total().Sub(stats0),
	}, nil
}

// stageAndRunChunk stages active vertices [lo, hi) of the extracted
// subgraph into GPU memory, runs the relaxation kernel on them, models the
// chunk's transfer (overlapped when async), and releases the staging
// buffers.
func stageAndRunChunk(dev *gpu.Device, cfg SubwayConfig, sub *graph.Subgraph, app core.App,
	lo, hi int, values *memsys.Buffer, active []bool) error {

	arena := dev.Arena()
	nAct := hi - lo
	base := sub.Offsets[lo]
	nEdges := sub.Offsets[hi] - base

	offBuf, err := arena.Alloc("subway.suboff", memsys.SpaceGPU, int64(nAct+1)*8)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrSubwayOOM, err)
	}
	defer arena.Free(offBuf)
	dstBuf, err := arena.Alloc("subway.subdst", memsys.SpaceGPU,
		nEdges*int64(cfg.EdgeBytes), memsys.WithElem(cfg.EdgeBytes))
	if err != nil {
		return fmt.Errorf("%w: %v", ErrSubwayOOM, err)
	}
	defer arena.Free(dstBuf)
	var wgtBuf *memsys.Buffer
	if app == core.AppSSSP {
		wgtBuf, err = arena.Alloc("subway.subwgt", memsys.SpaceGPU, nEdges*4)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrSubwayOOM, err)
		}
		defer arena.Free(wgtBuf)
	}
	for i := 0; i <= nAct; i++ {
		offBuf.PutU64(int64(i), uint64(sub.Offsets[lo+i]-base))
	}
	for i := int64(0); i < nEdges; i++ {
		d := sub.Dst[base+i]
		if cfg.EdgeBytes == 4 {
			dstBuf.PutU32(i, d)
		} else {
			dstBuf.PutU64(i, uint64(d))
		}
	}
	if wgtBuf != nil {
		for i := int64(0); i < nEdges; i++ {
			wgtBuf.PutU32(i, sub.Weights[base+i])
		}
	}

	// The kernel consumes GPU-resident data; with async Subway the chunk
	// transfer overlaps kernel execution, otherwise they serialize.
	kernelStart := dev.Clock()
	launchSubwayKernel(dev, sub, app, lo, offBuf, dstBuf, wgtBuf, values, active)
	kernelTime := dev.Clock() - kernelStart

	chunkBytes := int64(nAct)*4 + int64(nAct+1)*int64(cfg.EdgeBytes) + nEdges*int64(cfg.EdgeBytes)
	if wgtBuf != nil {
		chunkBytes += nEdges * 4
	}
	transferTime := time.Duration(dev.Config().Link.BulkSeconds(chunkBytes) * float64(time.Second))
	dev.Monitor().RecordBulk(chunkBytes, dev.Config().Link.TLPOverheadBytes)
	if cfg.Async && transferTime > kernelTime {
		dev.HostCompute(transferTime - kernelTime)
	} else if !cfg.Async {
		dev.HostCompute(transferTime)
	}
	return nil
}

// launchSubwayKernel relaxes every edge of the staged chunk from GPU
// memory, updating the global value array and marking updated destinations
// active for the next iteration.
func launchSubwayKernel(dev *gpu.Device, sub *graph.Subgraph, app core.App, lo int,
	offBuf, dstBuf, wgtBuf, values *memsys.Buffer, active []bool) *gpu.KernelStats {

	edgeBytes := dstBuf.Elem
	nAct := int(offBuf.Size()/8) - 1
	// Serial launch: the kernel reads source values from the live relax
	// target and marks the host-side active slice from inside the body,
	// both of which are unsafe under concurrent warp execution.
	return dev.Launch("subway/"+app.String(), nAct, func(w *gpu.Warp) {
		i := int64(w.ID())
		start, end := w.PairU64(offBuf, i)
		if start >= end {
			return
		}
		v := sub.Vertices[lo+int(i)]
		srcVal := w.ScalarU32(values, int64(v))
		if srcVal == graph.InfDist {
			return
		}
		for base := int64(start); base < int64(end); base += gpu.WarpSize {
			var idx [gpu.WarpSize]int64
			mask := gpu.MaskNone
			for l := 0; l < gpu.WarpSize; l++ {
				if j := base + int64(l); j < int64(end) {
					idx[l] = j
					mask = mask.Set(l)
				}
			}
			var dst [gpu.WarpSize]uint32
			if edgeBytes == 8 {
				vals := w.GatherU64(dstBuf, &idx, mask)
				for l := 0; l < gpu.WarpSize; l++ {
					dst[l] = uint32(vals[l])
				}
			} else {
				dst = w.GatherU32(dstBuf, &idx, mask)
			}
			var wgt [gpu.WarpSize]uint32
			if wgtBuf != nil {
				wgt = w.GatherU32(wgtBuf, &idx, mask)
			}
			var tgtIdx [gpu.WarpSize]int64
			var cand [gpu.WarpSize]uint32
			for l := 0; l < gpu.WarpSize; l++ {
				if !mask.Has(l) {
					continue
				}
				tgtIdx[l] = int64(dst[l])
				switch app {
				case core.AppSSSP:
					cand[l] = srcVal + wgt[l]
				case core.AppBFS:
					cand[l] = srcVal + 1
				default: // CC pushes the label itself
					cand[l] = srcVal
				}
			}
			old := w.AtomicMinU32(values, &tgtIdx, &cand, mask)
			for l := 0; l < gpu.WarpSize; l++ {
				if mask.Has(l) && old[l] > cand[l] {
					active[dst[l]] = true
				}
			}
		}
	}, gpu.Serial())
}
