package fault

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/pcie"
)

// TestProfiles: every named profile builds, "none" is a nil injector, and
// unknown names error with the known list.
func TestProfiles(t *testing.T) {
	for _, name := range []string{ProfileFlakyLink, ProfileDegradedGen1, ProfileOOMPressure} {
		inj, err := Profile(name, 7)
		if err != nil {
			t.Fatalf("Profile(%q): %v", name, err)
		}
		if inj == nil {
			t.Fatalf("Profile(%q) = nil injector", name)
		}
		if inj.Name() != name {
			t.Errorf("Profile(%q).Name() = %q", name, inj.Name())
		}
	}
	for _, name := range []string{ProfileNone, ""} {
		inj, err := Profile(name, 7)
		if err != nil || inj != nil {
			t.Errorf("Profile(%q) = (%v, %v), want (nil, nil)", name, inj, err)
		}
	}
	if _, err := Profile("flaky-lnik", 7); err == nil {
		t.Error("unknown profile name did not error")
	}
}

// TestNewValidation: rates outside [0,1] and other malformed configs are
// rejected; an all-disabled config collapses to a nil injector.
func TestNewValidation(t *testing.T) {
	bad := []Config{
		{ReadFaultRate: -0.1},
		{ReadFaultRate: 1.5},
		{SpikeRate: math.NaN()},
		{AllocFaultRate: 2},
		{ReadFaultRate: 0.5, SpikePenalty: -time.Second},
		{WireScale: math.Inf(1)},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) accepted an invalid config", cfg)
		}
	}
	inj, err := New(Config{Seed: 3, WireScale: 0.5}) // <= 1 means healthy
	if err != nil || inj != nil {
		t.Errorf("all-disabled config: got (%v, %v), want (nil, nil)", inj, err)
	}
}

// TestRequestFaultDeterminism: decisions are pure functions of the
// coordinates — identical across injector instances with the same seed,
// regardless of query order — and different seeds decorrelate.
func TestRequestFaultDeterminism(t *testing.T) {
	mk := func(seed uint64) Injector {
		inj, err := New(Config{Seed: seed, ReadFaultRate: 0.05, SpikeRate: 0.05, SpikePenalty: time.Microsecond})
		if err != nil {
			t.Fatal(err)
		}
		return inj
	}
	a, b := mk(42), mk(42)
	const n = 4096
	// Query b in reverse order: call order must not matter.
	got := make([]pcie.RequestOutcome, n)
	for i := n - 1; i >= 0; i-- {
		got[i] = b.RequestFault(1, i%7, uint64(i), 32)
	}
	diff := 0
	var fails, spikes int
	for i := 0; i < n; i++ {
		out := a.RequestFault(1, i%7, uint64(i), 32)
		if out != got[i] {
			diff++
		}
		switch out {
		case pcie.ReqFail:
			fails++
		case pcie.ReqSpike:
			spikes++
		}
	}
	if diff != 0 {
		t.Errorf("%d/%d decisions differ between same-seed injectors", diff, n)
	}
	if fails == 0 || spikes == 0 {
		t.Fatalf("5%% rates over %d requests produced fails=%d spikes=%d; hash is not firing", n, fails, spikes)
	}
	// The injector's own tally matches the decisions it returned.
	counts := a.Counts()
	if counts.ReadFaults != uint64(fails) || counts.Spikes != uint64(spikes) {
		t.Errorf("Counts() = %+v, want ReadFaults=%d Spikes=%d", counts, fails, spikes)
	}

	// A different seed must not reproduce the same decision sequence.
	c := mk(43)
	diff = 0
	for i := 0; i < n; i++ {
		if c.RequestFault(1, i%7, uint64(i), 32) != got[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("seed 43 reproduced seed 42's decisions exactly")
	}
}

// TestEpochDecorrelation: the same request coordinates under a different
// run epoch draw fresh outcomes — the property that makes retries
// meaningful instead of deterministically re-failing forever.
func TestEpochDecorrelation(t *testing.T) {
	inj, err := New(Config{Seed: 9, ReadFaultRate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	const n = 512
	diff := 0
	for i := 0; i < n; i++ {
		if inj.RequestFault(1, 0, uint64(i), 32) != inj.RequestFault(2, 0, uint64(i), 32) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("epoch change did not alter any of the decisions")
	}
}

// TestRateAccuracy: the observed fault fraction tracks the configured rate
// (the threshold math maps probabilities onto the hash range correctly).
func TestRateAccuracy(t *testing.T) {
	const rate, n = 0.01, 200000
	inj, err := New(Config{Seed: 5, ReadFaultRate: rate})
	if err != nil {
		t.Fatal(err)
	}
	fails := 0
	for i := 0; i < n; i++ {
		if inj.RequestFault(uint64(i/1000), i%64, uint64(i), 32) == pcie.ReqFail {
			fails++
		}
	}
	got := float64(fails) / n
	if got < rate/2 || got > rate*2 {
		t.Errorf("observed fault rate %.5f, configured %.5f", got, rate)
	}
}

// TestAllocFault: injected allocation failures match ErrTransient, count
// themselves, and successive draws see fresh outcomes (so retries can
// succeed).
func TestAllocFault(t *testing.T) {
	inj, err := New(Config{Seed: 11, AllocFaultRate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	failed, succeeded := 0, 0
	for i := 0; i < 256; i++ {
		if err := inj.AllocFault(4096); err != nil {
			if !errors.Is(err, ErrTransient) {
				t.Fatalf("alloc fault %v does not match ErrTransient", err)
			}
			var ae *InjectedAllocError
			if !errors.As(err, &ae) || ae.Size != 4096 {
				t.Fatalf("alloc fault %v is not an *InjectedAllocError carrying the size", err)
			}
			failed++
		} else {
			succeeded++
		}
	}
	if failed == 0 || succeeded == 0 {
		t.Fatalf("50%% alloc faults over 256 draws: failed=%d succeeded=%d", failed, succeeded)
	}
	if got := inj.Counts().AllocFaults; got != uint64(failed) {
		t.Errorf("Counts().AllocFaults = %d, want %d", got, failed)
	}
}

// TestWireScale: the degraded-gen1 profile derates the wire and the link
// model stretches request occupancy by exactly that factor; a nil hook
// leaves the formula untouched.
func TestWireScale(t *testing.T) {
	inj, err := Profile(ProfileDegradedGen1, 1)
	if err != nil {
		t.Fatal(err)
	}
	healthy := pcie.Gen3x16()
	degraded := pcie.Gen3x16()
	degraded.Faults = inj
	hw, dw := healthy.WireSeconds(128), degraded.WireSeconds(128)
	if want := hw * inj.WireScale(); dw != want {
		t.Errorf("degraded WireSeconds = %v, want %v (healthy %v x scale %v)", dw, want, hw, inj.WireScale())
	}
	if degraded.BulkSeconds(1<<20) <= healthy.BulkSeconds(1<<20) {
		t.Error("bulk transfers did not slow down on the degraded link")
	}
}
