// Package fault provides deterministic, seeded fault injection for the
// simulated memory hierarchy and interconnect. EMOGI's argument is about how
// the interconnect behaves under load, yet an analytic link model never
// fails on its own; real external-memory fabrics retrain to lower
// generations, drop completions, and exhibit microsecond-scale latency
// spikes (arXiv:2312.03113), and robust out-of-memory traversal systems
// switch transfer-management modes under pressure (HyTGraph,
// arXiv:2208.14935). An Injector imposes those behaviours on the simulator
// so the recovery machinery above it (engine abort paths, service retries,
// transport degradation) can be exercised reproducibly.
//
// Determinism contract. Every decision is a pure function of the injector's
// seed and the coordinates of the event being decided — (runEpoch, warp,
// per-warp request sequence) for link requests — never of wall-clock time or
// global call order. The parallel launch engine shards warps across host
// workers in nondeterministic order; because decisions are coordinate-keyed,
// the set of injected faults (and therefore every merged kernel statistic)
// is bit-for-bit identical across worker counts and runs. The run epoch is
// mixed in so a retry of a faulted run sees fresh outcomes instead of
// deterministically hitting the same faults forever.
package fault

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/pcie"
)

// ErrTransient is the sentinel matched (via errors.Is) by every error that
// originates from injected transient faults: the engine's *TransientError
// and the injector's *InjectedAllocError both identify as it. Callers use
// it to decide whether a failed run is worth retrying.
var ErrTransient = errors.New("transient injected fault")

// Counts is a snapshot of the injector's own tally of injected faults, by
// kind. The service layer diffs successive snapshots into the telemetry
// counters, so the exported emogi_faults_injected_total series is exactly
// consistent with the injector's view.
type Counts struct {
	// ReadFaults is the number of zero-copy read requests failed (ReqFail).
	ReadFaults uint64
	// Spikes is the number of latency spikes injected (ReqSpike).
	Spikes uint64
	// AllocFaults is the number of arena allocations failed.
	AllocFaults uint64
}

// Total returns the sum over all kinds.
func (c Counts) Total() uint64 { return c.ReadFaults + c.Spikes + c.AllocFaults }

// Injector is a seeded, reproducible source of faults. It plugs into the
// link model as a pcie.FaultHook and into the memory system through an
// allocation hook adapter. Implementations are safe for concurrent use. A
// nil Injector everywhere means injection is disabled; every hook site is
// nil-checked so the disabled hot paths are zero-overhead.
type Injector interface {
	pcie.FaultHook

	// AllocFault decides whether one arena allocation of the given size
	// fails. A non-nil return is an *InjectedAllocError (transient: the
	// caller may retry). Unlike link requests, allocations happen under
	// the device run mutex, so a process-order sequence number is a stable
	// coordinate; successive attempts see fresh outcomes.
	AllocFault(size int64) error

	// Counts returns a snapshot of the faults injected so far.
	Counts() Counts

	// Name returns the profile name the injector was built from (or
	// "custom" for hand-built configs).
	Name() string
}

// InjectedAllocError is returned by Injector.AllocFault for an injected
// allocation failure. It matches ErrTransient via errors.Is.
type InjectedAllocError struct {
	// Size is the requested allocation size in bytes.
	Size int64
}

func (e *InjectedAllocError) Error() string {
	return fmt.Sprintf("fault: injected allocation failure (%d bytes)", e.Size)
}

// Is reports whether target is the transient-fault sentinel.
func (e *InjectedAllocError) Is(target error) bool { return target == ErrTransient }

// Config parameterizes an injector. Rates are per-event probabilities in
// [0, 1]; a zero rate disables that fault kind.
type Config struct {
	// Profile is the name reported by Injector.Name.
	Profile string

	// Seed keys every decision. The same seed reproduces the same faults
	// for the same workload, regardless of worker count.
	Seed uint64

	// ReadFaultRate is the probability that one zero-copy read request
	// fails transiently.
	ReadFaultRate float64

	// SpikeRate is the probability that one zero-copy read request incurs
	// a latency spike of SpikePenalty.
	SpikeRate float64

	// SpikePenalty is the simulated stall charged per injected spike.
	SpikePenalty time.Duration

	// WireScale >= 1 stretches per-request wire occupancy, modeling a link
	// retrained to a lower generation (e.g. Gen3 signaling falling back to
	// Gen1 rates). Values <= 1 mean a healthy wire.
	WireScale float64

	// AllocFaultRate is the probability that one arena allocation fails.
	AllocFaultRate float64
}

// Profile names understood by ProfileConfig.
const (
	// ProfileNone disables injection entirely (nil injector).
	ProfileNone = "none"
	// ProfileFlakyLink injects transient read failures at 1% per request
	// plus occasional latency spikes; the wire itself stays at full rate.
	ProfileFlakyLink = "flaky-link"
	// ProfileDegradedGen1 models a link retrained from Gen3 to Gen1
	// signaling: wire occupancy stretches ~3.9x and spikes are common, but
	// requests complete.
	ProfileDegradedGen1 = "degraded-gen1"
	// ProfileOOMPressure injects allocation failures, modeling device
	// memory pressure from co-tenant workloads.
	ProfileOOMPressure = "oom-pressure"
)

// Names returns the known profile names, sorted, for flag help text.
func Names() []string {
	names := []string{ProfileNone, ProfileFlakyLink, ProfileDegradedGen1, ProfileOOMPressure}
	sort.Strings(names)
	return names
}

// ProfileConfig returns the Config for a named profile with the given seed.
// The returned Config can be adjusted (e.g. overriding ReadFaultRate)
// before being passed to New.
func ProfileConfig(name string, seed uint64) (Config, error) {
	switch name {
	case ProfileNone, "":
		return Config{Profile: ProfileNone, Seed: seed}, nil
	case ProfileFlakyLink:
		return Config{
			Profile:       ProfileFlakyLink,
			Seed:          seed,
			ReadFaultRate: 0.01,
			SpikeRate:     0.002,
			SpikePenalty:  5 * time.Microsecond,
		}, nil
	case ProfileDegradedGen1:
		// Gen3 x16 moves ~7.88 Gb/s/lane post-encoding (8 GT/s, 128b/130b);
		// Gen1 moves 2.0 Gb/s/lane (2.5 GT/s, 8b/10b): a 3.94x stretch.
		return Config{
			Profile:      ProfileDegradedGen1,
			Seed:         seed,
			WireScale:    3.94,
			SpikeRate:    0.01,
			SpikePenalty: 10 * time.Microsecond,
		}, nil
	case ProfileOOMPressure:
		return Config{
			Profile:        ProfileOOMPressure,
			Seed:           seed,
			AllocFaultRate: 0.25,
		}, nil
	default:
		return Config{}, fmt.Errorf("fault: unknown profile %q (known: %v)", name, Names())
	}
}

// Profile builds an injector for a named profile. For "none" (or "") it
// returns (nil, nil): a nil Injector disables injection.
func Profile(name string, seed uint64) (Injector, error) {
	cfg, err := ProfileConfig(name, seed)
	if err != nil {
		return nil, err
	}
	return New(cfg)
}

// New builds an injector from a Config. A config with no fault kinds
// enabled (all rates zero, WireScale <= 1) returns (nil, nil) so callers
// can wire the result unconditionally and still get the zero-overhead
// disabled paths.
func New(cfg Config) (Injector, error) {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"ReadFaultRate", cfg.ReadFaultRate},
		{"SpikeRate", cfg.SpikeRate},
		{"AllocFaultRate", cfg.AllocFaultRate},
	} {
		if r.v < 0 || r.v > 1 || math.IsNaN(r.v) {
			return nil, fmt.Errorf("fault: %s %v outside [0, 1]", r.name, r.v)
		}
	}
	if cfg.SpikePenalty < 0 {
		return nil, fmt.Errorf("fault: negative SpikePenalty %v", cfg.SpikePenalty)
	}
	if math.IsNaN(cfg.WireScale) || math.IsInf(cfg.WireScale, 0) {
		return nil, fmt.Errorf("fault: invalid WireScale %v", cfg.WireScale)
	}
	if cfg.ReadFaultRate == 0 && cfg.SpikeRate == 0 && cfg.AllocFaultRate == 0 && cfg.WireScale <= 1 {
		return nil, nil
	}
	name := cfg.Profile
	if name == "" {
		name = "custom"
	}
	return &injector{
		cfg:         cfg,
		name:        name,
		readThresh:  rateThreshold(cfg.ReadFaultRate),
		spikeThresh: rateThreshold(cfg.SpikeRate),
		allocThresh: rateThreshold(cfg.AllocFaultRate),
	}, nil
}

// rateThreshold maps a probability to a threshold on a uniform 64-bit hash:
// the event fires when hash < threshold.
func rateThreshold(rate float64) uint64 {
	if rate <= 0 {
		return 0
	}
	if rate >= 1 {
		return math.MaxUint64
	}
	return uint64(rate * float64(1<<63) * 2) // rate * 2^64, overflow-safe
}

type injector struct {
	cfg  Config
	name string

	readThresh  uint64
	spikeThresh uint64
	allocThresh uint64

	allocSeq atomic.Uint64

	readFaults  atomic.Uint64
	spikes      atomic.Uint64
	allocFaults atomic.Uint64
}

// splitmix64's finalizer: a fast full-avalanche 64-bit mixer.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hash folds the event coordinates and a per-kind salt into a uniform
// 64-bit value keyed by the seed. Pure function of its arguments.
func (in *injector) hash(a, b, c, salt uint64) uint64 {
	h := in.cfg.Seed + 0x9e3779b97f4a7c15
	h = mix(h ^ a)
	h = mix(h ^ b)
	h = mix(h ^ c)
	return mix(h ^ salt)
}

// Per-kind salts keep the fail and spike decisions for the same request
// independent of each other.
const (
	saltRead  = 0x726561646661696c // "readfail"
	saltSpike = 0x6c617473706b6521 // "latspke!"
	saltAlloc = 0x616c6c6f63666c74 // "allocflt"
)

func (in *injector) RequestFault(epoch uint64, stream int, seq uint64, payloadBytes int) pcie.RequestOutcome {
	if in.readThresh > 0 && in.hash(epoch, uint64(stream), seq, saltRead) < in.readThresh {
		in.readFaults.Add(1)
		return pcie.ReqFail
	}
	if in.spikeThresh > 0 && in.hash(epoch, uint64(stream), seq, saltSpike) < in.spikeThresh {
		in.spikes.Add(1)
		return pcie.ReqSpike
	}
	return pcie.ReqOK
}

func (in *injector) WireScale() float64 {
	if in.cfg.WireScale > 1 {
		return in.cfg.WireScale
	}
	return 1
}

func (in *injector) SpikePenalty() time.Duration { return in.cfg.SpikePenalty }

func (in *injector) AllocFault(size int64) error {
	if in.allocThresh == 0 {
		return nil
	}
	seq := in.allocSeq.Add(1)
	if in.hash(seq, uint64(size), 0, saltAlloc) < in.allocThresh {
		in.allocFaults.Add(1)
		return &InjectedAllocError{Size: size}
	}
	return nil
}

func (in *injector) Counts() Counts {
	return Counts{
		ReadFaults:  in.readFaults.Load(),
		Spikes:      in.spikes.Load(),
		AllocFaults: in.allocFaults.Load(),
	}
}

func (in *injector) Name() string { return in.name }
