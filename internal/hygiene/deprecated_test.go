// Package hygiene holds repo-wide source checks that gate CI: pure-Go
// guards that don't need external linters. They run as ordinary tests so
// `go test ./...` — the tier-1 gate — enforces them on every platform.
package hygiene

import (
	"bufio"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// deprecatedRule flags internal callers of a deprecated API. Pattern is a
// plain substring matched against non-comment source lines of non-test .go
// files; allowedFiles (slash-separated, repo-relative) may still contain it
// — the declaration site and deliberate compatibility shims.
type deprecatedRule struct {
	pattern      string
	allowedFiles []string
	reason       string
}

// deprecatedRules is the guard list: every entry is a Deprecated symbol
// whose internal non-test callers should have migrated. Shims stay for API
// stability, but production code paths must not route through them (the
// PR 9 review found NewTieredArena itself calling the deprecated NewArena).
var deprecatedRules = []deprecatedRule{
	{
		pattern:      "memsys.NewArena(",
		allowedFiles: nil,
		reason:       "use memsys.NewTieredArena with an explicit TierStack",
	},
	{
		pattern: "NewArena(",
		// Only the declaration and its doc live here; the shim delegates to
		// NewTieredArena, never the other way around.
		allowedFiles: []string{"internal/memsys/memsys.go"},
		reason:       "use NewTieredArena (memsys-internal callers included)",
	},
	{
		pattern:      ".RecordN(",
		allowedFiles: []string{"internal/pcie/monitor.go"},
		reason:       "use Monitor.RecordClassN with an explicit TransferClass",
	},
	{
		pattern:      "uvm.DefaultConfig(",
		allowedFiles: nil,
		reason:       "use uvm.ConfigWithPaging",
	},
}

// TestNoInternalDeprecatedCallers walks every non-test .go file in the repo
// and fails on non-comment lines that call a deprecated API outside its
// allowed files. It is string-based by design — fast, dependency-free, and
// the patterns are chosen so declarations don't self-match (method decls
// read ") Name(", not ".Name(").
func TestNoInternalDeprecatedCallers(t *testing.T) {
	root := repoRoot(t)
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name == ".git" || name == "testdata" || name == "results" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		checkFile(t, path, rel)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func checkFile(t *testing.T, path, rel string) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open %s: %v", rel, err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		code := stripLineComment(line)
		if strings.TrimSpace(code) == "" {
			continue
		}
		for _, r := range deprecatedRules {
			if !strings.Contains(code, r.pattern) {
				continue
			}
			if r.pattern == "NewArena(" {
				if !strings.Contains(rel, "internal/memsys/") {
					continue // cross-package callers are the memsys.NewArena( rule
				}
				if strings.Contains(code, "NewTieredArena(") &&
					!strings.Contains(strings.ReplaceAll(code, "NewTieredArena(", ""), "NewArena(") {
					continue
				}
			}
			if allowed(rel, r.allowedFiles) {
				continue
			}
			t.Errorf("%s:%d: calls deprecated API %q — %s", rel, lineNo, r.pattern, r.reason)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan %s: %v", rel, err)
	}
}

func allowed(rel string, files []string) bool {
	for _, f := range files {
		if rel == f {
			return true
		}
	}
	return false
}

// stripLineComment removes a trailing // comment, respecting string
// literals well enough for this repo's code (no // inside backquoted
// strings containing quotes).
func stripLineComment(line string) string {
	inStr := byte(0)
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case inStr != 0:
			if c == '\\' && inStr == '"' {
				i++
			} else if c == inStr {
				inStr = 0
			}
		case c == '"' || c == '`' || c == '\'':
			inStr = c
		case c == '/' && i+1 < len(line) && line[i+1] == '/':
			return line[:i]
		}
	}
	return line
}

// repoRoot locates the module root by walking up to go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}
