// Socialreach analyzes degrees of separation in a Friendster-like social
// network — one of the workloads the paper's introduction motivates
// (social network analysis on graphs larger than GPU memory).
//
// It runs EMOGI BFS from a handful of seed users and reports how much of
// the network is reachable within k hops, plus the traversal's PCIe
// behaviour on the simulated V100.
package main

import (
	"fmt"
	"log"

	emogi "repro"
)

func main() {
	const scale = 0.25

	g, err := emogi.BuildDataset("FS", scale, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("social network: %d users, %d friendships (avg %.1f friends)\n\n",
		g.NumVertices(), g.NumEdges()/2, g.AvgDegree())

	sys := emogi.NewSystem(emogi.V100PCIe3(scale))
	dg, err := sys.Load(g)
	if err != nil {
		log.Fatal(err)
	}

	seeds := emogi.PickSources(g, 3, 99)
	for _, seed := range seeds {
		res, err := sys.BFS(dg, seed, emogi.MergedAligned)
		if err != nil {
			log.Fatal(err)
		}
		if err := emogi.Validate(g, res); err != nil {
			log.Fatalf("BFS result failed validation: %v", err)
		}

		// Degrees-of-separation histogram.
		const maxHops = 8
		var byHop [maxHops + 1]int
		reached := 0
		for _, level := range res.Values {
			if level == ^uint32(0) {
				continue
			}
			reached++
			if level < maxHops {
				byHop[level]++
			} else {
				byHop[maxHops]++
			}
		}
		fmt.Printf("seed user %d: reached %d/%d users in %d rounds (%v simulated)\n",
			seed, reached, g.NumVertices(), res.Iterations, res.Elapsed)
		cum := 0
		for hop, n := range byHop {
			if n == 0 {
				continue
			}
			cum += n
			label := fmt.Sprintf("%d hops", hop)
			if hop == maxHops {
				label = "8+ hops"
			}
			fmt.Printf("  within %-7s %8d users (%.1f%%)\n",
				label, cum, 100*float64(cum)/float64(g.NumVertices()))
		}
		fmt.Println()
	}

	mon := sys.Device().Monitor().Snapshot()
	fmt.Printf("PCIe traffic across all traversals: %d requests, %.1f MB payload, %.1f%% at 128B\n",
		mon.Requests, float64(mon.PayloadBytes)/1e6,
		100*float64(mon.BySize[128])/float64(mon.Requests))
}
