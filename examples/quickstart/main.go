// Quickstart: load a graph that does not fit in GPU memory and traverse
// it with EMOGI's zero-copy kernels, then compare against the UVM
// baseline — the paper's headline experiment in ~40 lines.
package main

import (
	"fmt"
	"log"

	emogi "repro"
)

func main() {
	const scale = 0.25 // quarter of the standard 1:1000 reduction: quick but out-of-memory

	// Build the GAP-kron analog: a heavy-tailed graph whose edge list is
	// roughly twice the simulated V100's memory at this scale.
	g, err := emogi.BuildDataset("GK", scale, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph %s: %d vertices, %d edges (%.1f MB edge list)\n",
		g.Name, g.NumVertices(), g.NumEdges(), float64(g.EdgeListBytes(8))/1e6)

	sources := emogi.PickSources(g, 4, 1)

	// EMOGI: edge list pinned in host memory, traversed with zero-copy
	// reads merged into aligned 128-byte PCIe requests.
	sysE := emogi.NewSystem(emogi.V100PCIe3(scale))
	dgE, err := sysE.Load(g)
	if err != nil {
		log.Fatal(err)
	}
	em, err := sysE.RunMany(dgE, emogi.BFS, sources, emogi.MergedAligned)
	if err != nil {
		log.Fatal(err)
	}

	// Baseline: the same kernel over UVM-managed memory, paying 4KB page
	// migrations on every cold touch.
	sysU := emogi.NewSystem(emogi.V100PCIe3(scale))
	dgU, err := sysU.Load(g, emogi.WithTransport(emogi.UVM))
	if err != nil {
		log.Fatal(err)
	}
	uvm, err := sysU.RunMany(dgU, emogi.BFS, sources, emogi.Merged)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("BFS over %d sources (simulated times):\n", len(sources))
	fmt.Printf("  UVM baseline:   %10v   %5.2f GB/s   %.2fx I/O amplification\n",
		uvm.MeanElapsed, uvm.MeanBandwidth()/1e9,
		uvm.IOAmplification(g.EdgeListBytes(8)))
	fmt.Printf("  EMOGI:          %10v   %5.2f GB/s   %.2fx I/O amplification\n",
		em.MeanElapsed, em.MeanBandwidth()/1e9,
		em.IOAmplification(g.EdgeListBytes(8)))
	fmt.Printf("  speedup: %.2fx\n", emogi.Speedup(uvm, em))
}
