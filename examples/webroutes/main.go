// Webroutes computes weighted shortest paths over a uk-2007-like web
// crawl: edge weights model per-link fetch latencies and SSSP finds the
// cheapest click-path from a portal page to every other page.
//
// It contrasts all three kernel variants on the same workload, showing the
// merge and alignment optimizations as a user of the library would apply
// them (§4.3: "package the proposed optimizations into a library").
package main

import (
	"fmt"
	"log"

	emogi "repro"
)

func main() {
	const scale = 0.2

	g, err := emogi.BuildDataset("UK5", scale, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("web crawl: %d pages, %d links, weights = per-link latency in ms\n\n",
		g.NumVertices(), g.NumEdges())

	portal := emogi.PickSources(g, 1, 3)[0]

	for _, variant := range []emogi.Variant{emogi.Naive, emogi.Merged, emogi.MergedAligned} {
		sys := emogi.NewSystem(emogi.V100PCIe3(scale))
		dg, err := sys.Load(g)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.SSSP(dg, portal, variant)
		if err != nil {
			log.Fatal(err)
		}
		if err := emogi.Validate(g, res); err != nil {
			log.Fatalf("%s: wrong distances: %v", variant, err)
		}

		reachable, total := 0, uint64(0)
		var worst uint32
		for _, d := range res.Values {
			if d == ^uint32(0) {
				continue
			}
			reachable++
			total += uint64(d)
			if d > worst {
				worst = d
			}
		}
		mon := sys.Device().Monitor().Snapshot()
		fmt.Printf("%-15s %10v simulated, %6.2f GB/s PCIe, %9d requests\n",
			variant.String()+":", res.Elapsed,
			float64(res.Stats.PCIePayloadBytes)/res.Stats.Elapsed.Seconds()/1e9,
			mon.Requests)
		if variant == emogi.MergedAligned {
			fmt.Printf("\nfrom portal page %d: %d pages reachable, mean path cost %.0f ms, max %d ms\n",
				portal, reachable, float64(total)/float64(reachable), worst)
		}
	}
}
