// Multigpu demonstrates the §7 future-work extension: several simulated
// GPUs, each with its own PCIe link to host memory, traverse one
// out-of-memory graph cooperatively. Vertices are partitioned by balanced
// edge count; value replicas are min-reduced between levels.
package main

import (
	"fmt"
	"log"

	emogi "repro"
	"repro/internal/core"
	"repro/internal/gpu"
)

func main() {
	const scale = 0.25

	g, err := emogi.BuildDataset("GU", scale, 21)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph %s: %d vertices, %d edges (%.1f MB edge list in host memory)\n\n",
		g.Name, g.NumVertices(), g.NumEdges(), float64(g.EdgeListBytes(8))/1e6)

	src := emogi.PickSources(g, 1, 4)[0]
	var base float64
	for _, n := range []int{1, 2, 4} {
		devs := make([]*gpu.Device, n)
		for i := range devs {
			devs[i] = gpu.NewDevice(emogi.V100PCIe3(scale).GPU)
		}
		ms, err := core.NewMultiSystem(devs, g, 8)
		if err != nil {
			log.Fatal(err)
		}
		res, err := ms.BFS(src)
		if err != nil {
			log.Fatal(err)
		}
		if err := emogi.Validate(g, res); err != nil {
			log.Fatalf("%d GPUs produced wrong levels: %v", n, err)
		}
		ms.Free()

		t := res.Elapsed.Seconds() * 1e3
		if n == 1 {
			base = t
		}
		fmt.Printf("%d GPU(s): %7.2f ms simulated   speedup %.2fx   %6.1f MB over all links\n",
			n, t, base/t, float64(res.Stats.PCIePayloadBytes)/1e6)
		if n > 1 {
			lo, hi := ms.Partition(0)
			fmt.Printf("          partition 0 owns vertices [%d, %d)\n", lo, hi)
		}
	}
	fmt.Println("\nscaling is sub-linear: each level pays a replica min-reduce that")
	fmt.Println("grows with device count — the coordination cost §7 leaves open.")
}
