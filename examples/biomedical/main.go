// Biomedical runs connected-components over a MOLIERE_2016-like dense
// biomedical hypothesis graph (the paper's ML dataset: ~222 neighbors per
// entity), the kind of graph where UVM's 4KB pages look efficient — and
// shows EMOGI still wins, just by less (§5.4: CC shows the paper's lowest
// speedups because streaming the whole edge list has spatial locality).
package main

import (
	"fmt"
	"log"
	"sort"

	emogi "repro"
)

func main() {
	const scale = 0.2

	g, err := emogi.BuildDataset("ML", scale, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("biomedical graph: %d entities, %d associations (avg degree %.0f)\n\n",
		g.NumVertices(), g.NumEdges(), g.AvgDegree())

	run := func(name string, transport emogi.Transport, variant emogi.Variant) *emogi.Result {
		sys := emogi.NewSystem(emogi.V100PCIe3(scale))
		dg, err := sys.Load(g, emogi.WithTransport(transport))
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.CC(dg, variant)
		if err != nil {
			log.Fatal(err)
		}
		if err := emogi.Validate(g, res); err != nil {
			log.Fatalf("%s produced wrong components: %v", name, err)
		}
		fmt.Printf("%-14s %10v simulated, %6.1f MB moved over PCIe\n",
			name+":", res.Elapsed, float64(res.Stats.PCIePayloadBytes)/1e6)
		return res
	}

	uvm := run("UVM baseline", emogi.UVM, emogi.Merged)
	em := run("EMOGI", emogi.ZeroCopy, emogi.MergedAligned)
	fmt.Printf("speedup: %.2fx (the paper's CC speedups are its lowest — dense\n", //
		float64(uvm.Elapsed)/float64(em.Elapsed))
	fmt.Println("streaming gives UVM pages good locality, §5.4)")

	// Component census from the validated labels.
	sizes := map[uint32]int{}
	for _, label := range em.Values {
		sizes[label]++
	}
	type comp struct {
		label uint32
		n     int
	}
	comps := make([]comp, 0, len(sizes))
	for l, n := range sizes {
		comps = append(comps, comp{l, n})
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i].n > comps[j].n })
	fmt.Printf("\n%d connected components; largest:\n", len(comps))
	for i, c := range comps {
		if i == 5 {
			break
		}
		fmt.Printf("  component %-8d %8d entities (%.1f%%)\n",
			c.label, c.n, 100*float64(c.n)/float64(g.NumVertices()))
	}
}
