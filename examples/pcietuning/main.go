// Pcietuning is the systems-tuning walkthrough of §3.3: it drives the toy
// 1D traversal through every access pattern on both PCIe generations and
// prints the resulting request mixes and bandwidths — the experiment you
// would run (with the paper's FPGA) to decide how to write your kernels.
package main

import (
	"fmt"
	"log"

	emogi "repro"
	"repro/internal/core"
	"repro/internal/gpu"
)

func main() {
	const elems = 1 << 22 // 16MB of 4-byte elements

	platforms := []struct {
		name string
		cfg  emogi.SystemConfig
	}{
		{"V100 + PCIe 3.0", emogi.V100PCIe3(1.0)},
		{"A100 + PCIe 4.0", emogi.A100PCIe4(1.0)},
	}
	patterns := []struct {
		name      string
		pattern   core.ToyPattern
		transport core.Transport
	}{
		{"strided zero-copy", core.ToyStrided, core.ZeroCopy},
		{"misaligned zero-copy", core.ToyMergedMisaligned, core.ZeroCopy},
		{"aligned zero-copy", core.ToyMergedAligned, core.ZeroCopy},
		{"UVM (for reference)", core.ToyMergedAligned, core.UVM},
	}

	for _, p := range platforms {
		link := p.cfg.GPU.Link
		fmt.Printf("%s — memcpy ceiling %.2f GB/s\n", p.name, link.MemcpyPeak()/1e9)
		for _, pat := range patterns {
			dev := gpu.NewDevice(p.cfg.GPU)
			res, err := core.ToyTraverse(dev, elems, pat.pattern, pat.transport)
			if err != nil {
				log.Fatal(err)
			}
			eff := res.PCIeBandwidth / link.MemcpyPeak() * 100
			fmt.Printf("  %-22s %6.2f GB/s  (%5.1f%% of ceiling)  requests: %d\n",
				pat.name, res.PCIeBandwidth/1e9, eff, res.Snapshot.Requests)
		}
		fmt.Println()
	}

	fmt.Println("takeaways (the paper's §3.3):")
	fmt.Println("  1. merge lane accesses so the coalescer emits 128B requests;")
	fmt.Println("  2. shift warps onto 128B boundaries so merged requests stay whole;")
	fmt.Println("  3. zero-copy then saturates the link and scales with PCIe generation,")
	fmt.Println("     while UVM stays pinned at its fault-handler ceiling.")
}
